package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/eventlog"
	"repro/internal/server"
)

// The v1 multi-campaign API. Admin plane:
//
//	GET    /v1/campaigns               list campaigns, sorted by id (?state= and ?truth_model= filter)
//	POST   /v1/campaigns               create a campaign (spec + dataset)
//	GET    /v1/campaigns/{id}          one campaign's detail
//	DELETE /v1/campaigns/{id}          delete a closed or draft campaign (409 otherwise)
//	POST   /v1/campaigns/{id}/start    draft  -> live
//	POST   /v1/campaigns/{id}/pause    live   -> paused
//	POST   /v1/campaigns/{id}/resume   paused -> live
//	POST   /v1/campaigns/{id}/close    live|paused -> closed (terminal)
//
// Data plane, per campaign, backed by the embedded server.Handler:
//
//	GET  /v1/campaigns/{id}/task?worker=W
//	POST /v1/campaigns/{id}/answer
//	POST /v1/campaigns/{id}/objects | records   (open-world growth)
//	GET  /v1/campaigns/{id}/truths | confidence | trust | stats
//	GET  /v1/campaigns/{id}/metrics             (this campaign's registry)
//	GET  /v1/campaigns/{id}/trace               (recent traces as span trees)
//	POST /v1/campaigns/{id}/refresh
//
// Plus GET /metrics at the top level: every booted campaign's registry
// aggregated under a campaign label, with manager-level gauges
// (metrics.go).
//
// Lifecycle is enforced here: draft campaigns serve nothing (409); paused
// and closed campaigns reject task hand-out, answer/mutation ingestion and
// refresh with 409 while reads keep serving. A request with a known path
// but wrong method gets 405 with an Allow header on every route: the Go
// ServeMux handles the method-scoped patterns, and endpointMethods covers
// the catch-all proxy.

// mutatingEndpoint names the per-campaign endpoints that advance campaign
// state and are therefore gated to live campaigns only.
var mutatingEndpoint = map[string]bool{
	"task": true, "answer": true, "refresh": true, "objects": true, "records": true,
}

// endpointMethods maps every known per-campaign endpoint to its one allowed
// method, so the catch-all proxy route can answer wrong-method requests
// with 405 + Allow instead of a misleading 404/409. The lifecycle verbs
// appear here too: their POST patterns are registered on the mux, so only
// their wrong-method requests fall through to the catch-all.
var endpointMethods = map[string]string{
	"task":       http.MethodGet,
	"metrics":    http.MethodGet,
	"trace":      http.MethodGet,
	"answer":     http.MethodPost,
	"objects":    http.MethodPost,
	"records":    http.MethodPost,
	"truths":     http.MethodGet,
	"confidence": http.MethodGet,
	"trust":      http.MethodGet,
	"stats":      http.MethodGet,
	"refresh":    http.MethodPost,
	"start":      http.MethodPost,
	"pause":      http.MethodPost,
	"resume":     http.MethodPost,
	"close":      http.MethodPost,
}

// Handler returns the /v1 API handler.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", m.handleMetrics)
	mux.HandleFunc("GET /v1/campaigns", m.handleList)
	mux.HandleFunc("POST /v1/campaigns", m.handleCreate)
	mux.HandleFunc("GET /v1/campaigns/{id}", m.handleGet)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", m.handleDelete)
	mux.HandleFunc("POST /v1/campaigns/{id}/start", m.lifecycle(m.Start))
	mux.HandleFunc("POST /v1/campaigns/{id}/pause", m.lifecycle(m.Pause))
	mux.HandleFunc("POST /v1/campaigns/{id}/resume", m.lifecycle(m.Resume))
	mux.HandleFunc("POST /v1/campaigns/{id}/close", m.lifecycle(m.CloseCampaign))
	mux.HandleFunc("/v1/campaigns/{id}/{endpoint}", m.handleProxy)
	return mux
}

// Info is the campaign detail payload: persisted metadata plus, for booted
// campaigns, live stats and what boot-time recovery replayed.
type Info struct {
	Meta
	Stats     *server.Stats          `json:"stats,omitempty"`
	Recovered *eventlog.ReplayResult `json:"recovered,omitempty"`
}

func campaignInfo(c *Campaign) Info {
	info := Info{Meta: c.Meta()}
	if srv := c.Server(); srv != nil {
		st := srv.Stats()
		info.Stats = &st
		if rec := c.Recovered(); rec != (eventlog.ReplayResult{}) {
			info.Recovered = &rec
		}
	}
	return info
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	var filter State
	if q := r.URL.Query().Get("state"); q != "" {
		filter = State(q)
		if !filter.valid() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown state %q", q))
			return
		}
	}
	var modelFilter engine.TruthModel
	if q := r.URL.Query().Get("truth_model"); q != "" {
		tm, err := engine.ParseTruthModel(q)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		modelFilter = tm
	}
	campaigns := m.Campaigns() // sorted by id: list order is deterministic
	out := make([]Info, 0, len(campaigns))
	for _, c := range campaigns {
		if filter != "" && c.State() != filter {
			continue
		}
		if modelFilter != "" && c.Meta().TruthModel != string(modelFilter) {
			continue
		}
		out = append(out, campaignInfo(c))
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := m.Delete(id); err != nil {
		httpError(w, statusFor(err, http.StatusInternalServerError), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := m.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, campaignInfo(c))
}

// CreateRequest is the POST /v1/campaigns body: the campaign spec, the
// seed dataset in the data package's wire format (records, hierarchy root
// and edges, optional truth/domains), and the initial state — "draft"
// (default) parks the campaign for inspection, "live" starts serving
// immediately.
type CreateRequest struct {
	Spec
	State   State           `json:"state,omitempty"`
	Dataset json.RawMessage `json:"dataset"`
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	switch req.State {
	case "", StateDraft, StateLive:
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("initial state must be %q or %q, got %q", StateDraft, StateLive, req.State))
		return
	}
	if len(req.Dataset) == 0 {
		httpError(w, http.StatusBadRequest, "missing dataset")
		return
	}
	ds, err := data.Read(bytes.NewReader(req.Dataset))
	if err != nil {
		httpError(w, http.StatusBadRequest, "dataset: "+err.Error())
		return
	}
	c, err := m.Create(req.Spec, ds)
	if err != nil {
		httpError(w, statusFor(err, http.StatusBadRequest), err.Error())
		return
	}
	if req.State == StateLive {
		if err := m.Start(c.ID()); err != nil {
			// The campaign exists as a draft; surface the boot failure so the
			// operator can fix the config and retry the start.
			httpError(w, statusFor(err, http.StatusInternalServerError),
				fmt.Sprintf("campaign %s created as draft, start failed: %v", c.ID(), err))
			return
		}
	}
	writeJSON(w, http.StatusCreated, campaignInfo(c))
}

// lifecycle adapts a manager transition to an HTTP handler.
func (m *Manager) lifecycle(op func(id string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := op(id); err != nil {
			httpError(w, statusFor(err, http.StatusInternalServerError), err.Error())
			return
		}
		c, _ := m.Get(id)
		writeJSON(w, http.StatusOK, campaignInfo(c))
	}
}

// handleProxy gates a per-campaign data-plane request on the lifecycle
// state and forwards it to the campaign's embedded server handler.
func (m *Manager) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := m.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown campaign %q", id))
		return
	}
	state, h := c.serveInfo()
	endpoint := r.PathValue("endpoint")
	if allow, known := endpointMethods[endpoint]; known && r.Method != allow {
		w.Header().Set("Allow", allow)
		httpError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed for %s; use %s", r.Method, endpoint, allow))
		return
	}
	switch {
	case state == StateDraft:
		httpError(w, http.StatusConflict,
			fmt.Sprintf("campaign %q is a draft; POST /v1/campaigns/%s/start first", id, id))
		return
	case state != StateLive && mutatingEndpoint[endpoint]:
		httpError(w, http.StatusConflict,
			fmt.Sprintf("campaign %q is %s; %s is only served while live", id, state, endpoint))
		return
	}
	http.StripPrefix("/v1/campaigns/"+id, h).ServeHTTP(w, r)
}

// statusFor maps the package's sentinel errors onto HTTP statuses,
// falling back to fallback for everything else.
func statusFor(err error, fallback int) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists), errors.Is(err, ErrState):
		return http.StatusConflict
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrConfig):
		return http.StatusUnprocessableEntity
	}
	return fallback
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
