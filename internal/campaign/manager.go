package campaign

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/eventlog"
	"repro/internal/obs"
)

const (
	campaignsDir = "campaigns"
	metaFile     = "campaign.json"
	datasetFile  = "dataset.json"
	logFile      = "answers.jsonl"
)

// Sentinel errors, mapped to HTTP statuses by the v1 API (http.go).
var (
	ErrNotFound = errors.New("campaign: not found")
	ErrExists   = errors.New("campaign: already exists")
	ErrState    = errors.New("campaign: invalid lifecycle transition")
	ErrClosed   = errors.New("campaign: manager closed")
	// ErrConfig marks an invalid campaign configuration — an unknown truth
	// model, inferencer or assigner name — served as 422 with the valid
	// names in the message.
	ErrConfig = errors.New("campaign: invalid configuration")
)

var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,63}$`)

// Options configures a Manager.
type Options struct {
	// Workers is the E-step goroutine count handed to TDH inferencers
	// (-1 = all cores, 0/1 = sequential). Campaigns share the machine, so
	// sequential is a reasonable default under many concurrent campaigns.
	Workers int
	// Logger receives the manager's structured diagnostics — campaign
	// lifecycle transitions, boot replay summaries — and, with a campaign
	// attribute attached, each campaign server's (admission rejections,
	// pipeline stalls, slow publishes) and event log's (commit failures,
	// slow fsyncs). Nil discards everything.
	Logger *slog.Logger
}

// logger returns the configured logger, never nil.
func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(slog.DiscardHandler)
}

// Spec is the per-campaign configuration fixed at creation time.
type Spec struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// TruthModel selects the campaign's truth-model engine: categorical
	// (default), numeric, or multi_truth. It fixes which inferencer and
	// assigner names are valid and the wire shapes of /truths and
	// /confidence.
	TruthModel  string     `json:"truth_model,omitempty"`
	Inferencer  string     `json:"inferencer,omitempty"`   // default: the model's first (TDH / CRH / LTM)
	Assigner    string     `json:"assigner,omitempty"`     // default: the model's first (EAI / ME)
	K           int        `json:"k,omitempty"`            // default 5
	Seed        int64      `json:"seed,omitempty"`         // assigner sampling seed
	OpenAnswers bool       `json:"open_answers,omitempty"` // accept unassigned answers
	Policy      PolicySpec `json:"policy,omitempty"`
}

// Manager is the campaign registry: it owns every campaign under one data
// directory, creates new ones, drives their lifecycle, and recovers all of
// them at boot. The registry lock is held only for map access — campaign
// boot, inference and shutdown run outside it.
type Manager struct {
	dir  string
	opts Options
	log  *slog.Logger // Options.Logger, normalized to never nil

	// metrics is the manager's own registry (campaign counts by state);
	// per-campaign instruments live on each campaign's registry and are
	// scraped together by handleMetrics.
	metrics *obs.Registry

	mu        sync.RWMutex
	campaigns map[string]*Campaign
	creating  map[string]bool // ids reserved by in-flight Creates
	closed    bool
}

// Open recovers every campaign found under dir (creating the layout if dir
// is new) and returns the manager. Live and paused campaigns reload their
// dataset, replay their answer log — acknowledged answers are paid for and
// must survive any crash — and restart inference; closed campaigns boot
// read-only so their results keep serving; drafts stay cold. A campaign
// that fails to recover fails the whole Open: silently dropping a paid-for
// campaign is worse than a loud boot error.
func Open(dir string, opts Options) (*Manager, error) {
	root := filepath.Join(dir, campaignsDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	m := &Manager{dir: dir, opts: opts, log: opts.logger(), campaigns: map[string]*Campaign{}, creating: map[string]bool{}}
	m.metrics = newManagerMetrics(m)
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		cdir := filepath.Join(root, id)
		meta, err := readMeta(cdir)
		if errors.Is(err, os.ErrNotExist) {
			// A directory without campaign.json is a torn Create (the meta
			// write is the creation commit point): nothing in it was ever
			// acknowledged, so skip it rather than fail every healthy
			// campaign's boot. A later Create may reclaim the id.
			m.log.Warn("skipping torn campaign directory (no campaign.json)", "campaign", id)
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("campaign %s: %w", id, err)
		}
		if meta.ID != id {
			return nil, fmt.Errorf("campaign %s: %s claims id %q", id, metaFile, meta.ID)
		}
		c := &Campaign{dir: cdir, meta: meta}
		switch meta.State {
		case StateLive, StatePaused:
			if err := c.boot(opts, true); err != nil {
				return nil, err
			}
		case StateClosed:
			// Boot read-only and immediately stop the pipeline: the final
			// snapshot keeps serving reads, ingestion stays off.
			if err := c.boot(opts, false); err != nil {
				return nil, err
			}
			_ = c.srv.Close()
		}
		m.campaigns[id] = c
		if meta.State != StateDraft {
			rec := c.recovered
			m.log.Info("campaign recovered",
				"campaign", id, "state", string(meta.State),
				"replayed_answers", rec.Answers, "replayed_objects", rec.Objects,
				"replayed_records", rec.Records, "skipped_lines", rec.Skipped,
				"duplicates", rec.Duplicates)
		}
	}
	m.log.Info("campaign manager open", "dir", dir, "campaigns", len(m.campaigns))
	return m, nil
}

// Dir returns the manager's data directory.
func (m *Manager) Dir() string { return m.dir }

// Get returns a registered campaign.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// Campaigns returns the registered campaigns sorted by id.
func (m *Manager) Campaigns() []*Campaign {
	m.mu.RLock()
	out := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		out = append(out, c)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Create materializes a new draft campaign on disk — dataset, metadata —
// and registers it. The dataset (records + value hierarchy + optional
// gold) is fixed at creation; answers accumulate in the campaign's log.
func (m *Manager) Create(spec Spec, ds *data.Dataset) (*Campaign, error) {
	if !idPattern.MatchString(spec.ID) {
		return nil, fmt.Errorf("campaign: invalid id %q (want %s)", spec.ID, idPattern)
	}
	// Config names are validated here, at create time, against the declared
	// truth model's registry — an invalid combination is a 422 with the
	// valid names, not a deferred boot failure.
	tm, err := engine.ParseTruthModel(spec.TruthModel)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	spec.TruthModel = string(tm)
	if spec.Inferencer == "" {
		spec.Inferencer = engine.DefaultInferencer(tm)
	}
	if spec.Assigner == "" {
		spec.Assigner = engine.DefaultAssigner(tm)
	}
	if spec.K == 0 {
		spec.K = 5
	}
	if _, err := engine.New(tm, spec.Inferencer, engine.Config{}); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if _, err := engine.NewAssigner(tm, spec.Assigner); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if ds == nil {
		return nil, errors.New("campaign: nil dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}

	// Reserve the id, then do all disk I/O outside the registry lock: a
	// large dataset write must not stall /task and /answer for every other
	// campaign behind m.mu.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := m.campaigns[spec.ID]; ok || m.creating[spec.ID] {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.ID)
	}
	m.creating[spec.ID] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.creating, spec.ID)
		m.mu.Unlock()
	}()

	// campaign.json is the creation commit point: a directory carrying one
	// is a real campaign (ErrExists); one without is debris from a torn
	// Create and is safe to reclaim.
	cdir := filepath.Join(m.dir, campaignsDir, spec.ID)
	if _, err := os.Stat(filepath.Join(cdir, metaFile)); err == nil {
		return nil, fmt.Errorf("%w: %s (unregistered campaign on disk)", ErrExists, spec.ID)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := data.SaveFile(filepath.Join(cdir, datasetFile), ds); err != nil {
		_ = os.RemoveAll(cdir)
		return nil, fmt.Errorf("campaign %s: dataset: %w", spec.ID, err)
	}
	now := time.Now().UTC()
	c := &Campaign{
		dir: cdir,
		meta: Meta{
			ID:          spec.ID,
			Name:        spec.Name,
			State:       StateDraft,
			TruthModel:  spec.TruthModel,
			Inferencer:  spec.Inferencer,
			Assigner:    spec.Assigner,
			K:           spec.K,
			Seed:        spec.Seed,
			OpenAnswers: spec.OpenAnswers,
			Policy:      spec.Policy,
			CreatedAt:   now,
		},
	}
	if err := c.persistMeta(); err != nil {
		_ = os.RemoveAll(cdir)
		return nil, fmt.Errorf("campaign %s: %w", spec.ID, err)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		// The campaign is durable on disk; the next Open registers it.
		return nil, ErrClosed
	}
	m.campaigns[spec.ID] = c
	m.mu.Unlock()
	m.log.Info("campaign created",
		"campaign", spec.ID, "state", string(StateDraft),
		"truth_model", spec.TruthModel, "inferencer", spec.Inferencer,
		"assigner", spec.Assigner)
	return c, nil
}

// Start boots a draft campaign and takes it live. If the new state cannot
// be persisted, the boot is rolled back — memory and disk always agree.
func (m *Manager) Start(id string) error {
	return m.withCampaign(id, func(c *Campaign) error {
		if c.meta.State != StateDraft {
			return fmt.Errorf("%w: cannot start a %s campaign", ErrState, c.meta.State)
		}
		if err := c.boot(m.opts, true); err != nil {
			return err
		}
		prev := c.meta
		c.meta.State = StateLive
		if err := c.persistMeta(); err != nil {
			_ = c.srv.Close()
			if c.log != nil {
				_ = c.log.Close()
			}
			c.srv, c.log, c.handler = nil, nil, nil
			c.recovered = eventlog.ReplayResult{}
			c.meta = prev
			return err
		}
		m.log.Info("campaign lifecycle transition",
			"campaign", id, "from", string(StateDraft), "to", string(StateLive))
		return nil
	})
}

// Pause halts task hand-out and answer ingestion for a live campaign;
// reads keep serving and all state is retained.
func (m *Manager) Pause(id string) error {
	return m.flipState(id, StateLive, StatePaused, "pause")
}

// Resume takes a paused campaign back live.
func (m *Manager) Resume(id string) error {
	return m.flipState(id, StatePaused, StateLive, "resume")
}

// flipState persists a pure state change (no resource action); on persist
// failure the in-memory state is untouched.
func (m *Manager) flipState(id string, from, to State, verb string) error {
	return m.withCampaign(id, func(c *Campaign) error {
		if c.meta.State != from {
			return fmt.Errorf("%w: cannot %s a %s campaign", ErrState, verb, c.meta.State)
		}
		prev := c.meta
		c.meta.State = to
		if err := c.persistMeta(); err != nil {
			c.meta = prev
			return err
		}
		m.log.Info("campaign lifecycle transition",
			"campaign", id, "from", string(from), "to", string(to))
		return nil
	})
}

// CloseCampaign ends a live or paused campaign: the terminal state is made
// durable first, then the pipeline drains every acknowledged answer into a
// final snapshot and the log is closed. Reads keep serving the final
// results. If persisting fails, nothing happens; once the state is on
// disk, even a crash mid-teardown reopens the campaign as closed.
func (m *Manager) CloseCampaign(id string) error {
	return m.withCampaign(id, func(c *Campaign) error {
		if c.meta.State != StateLive && c.meta.State != StatePaused {
			return fmt.Errorf("%w: cannot close a %s campaign", ErrState, c.meta.State)
		}
		prev := c.meta
		c.meta.State = StateClosed
		if err := c.persistMeta(); err != nil {
			c.meta = prev
			return err
		}
		err := c.srv.Close()
		if c.log != nil {
			if cerr := c.log.Close(); err == nil {
				err = cerr
			}
			c.log = nil
		}
		m.log.Info("campaign lifecycle transition",
			"campaign", id, "from", string(prev.State), "to", string(StateClosed))
		return err
	})
}

// Delete removes a campaign from the registry and from disk. Only closed
// and draft campaigns can be deleted (ErrState otherwise): deleting a live
// or paused campaign would destroy paid-for answer history behind a single
// call, so it must be an explicit two-step act — close, then delete — while
// a draft has no history to protect and no resources to stop. The metadata
// file goes first: campaign.json is the existence commit point (exactly as
// in Create), so a crash mid-delete leaves a directory without it, which
// boot-time recovery already skips as debris and a later Create may
// reclaim.
func (m *Manager) Delete(id string) error {
	err := m.withCampaign(id, func(c *Campaign) error {
		if c.meta.State != StateClosed && c.meta.State != StateDraft {
			return fmt.Errorf("%w: cannot delete a %s campaign (close it first)", ErrState, c.meta.State)
		}
		if err := os.Remove(filepath.Join(c.dir, metaFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("campaign %s: %w", id, err)
		}
		if err := os.RemoveAll(c.dir); err != nil {
			// The campaign is already deleted in the only sense that matters
			// (no campaign.json); leftover files are debris recovery skips.
			return fmt.Errorf("campaign %s: removing directory: %w", id, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.campaigns, id)
	m.mu.Unlock()
	m.log.Info("campaign deleted", "campaign", id)
	return nil
}

// withCampaign locates the campaign and runs fn under its lock. The
// registry lock is not held across fn: a booting campaign (initial
// inference over its dataset) must not block requests to every other
// campaign. Manager closure is re-checked once the campaign lock is held,
// so no transition can boot resources behind a concurrent Manager.Close —
// and if Close wins the race instead, its per-campaign shutdown blocks on
// c.mu until fn is done and then tears down whatever fn set up.
func (m *Manager) withCampaign(id string, fn func(*Campaign) error) error {
	m.mu.RLock()
	closed := m.closed
	c, ok := m.campaigns[id]
	m.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m.mu.RLock()
	closed = m.closed
	m.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	return fn(c)
}

// Close shuts every campaign down concurrently: each pipeline drains its
// acknowledged answers into a final snapshot and each log handle is
// closed. Persisted lifecycle states are untouched, so a subsequent Open
// resumes live campaigns live. Close is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	list := make([]*Campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		list = append(list, c)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range list {
		wg.Add(1)
		go func(c *Campaign) {
			defer wg.Done()
			c.shutdown()
		}(c)
	}
	wg.Wait()
	return nil
}
