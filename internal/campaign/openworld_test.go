package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/data"
)

// TestOpenWorldCampaignEndToEnd is the open-world acceptance test, run
// under -race: a live campaign starts with 3 objects and grows under
// concurrent traffic — one feeder streaming POST /objects + /records while
// workers pull tasks and answer — then the process dies kill-9 style (no
// graceful Close) and a restart must replay the event log with every
// acknowledged mutation AND answer intact, the grown corpus fully covered
// by inference.
func TestOpenWorldCampaignEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	api := httptest.NewServer(m.Handler())
	defer api.Close()
	client := api.Client()
	const id = "grow"

	body := createBody(t, Spec{ID: id, K: 3, Seed: 7, OpenAnswers: true}, StateLive, testDataset(id, 3))
	resp, err := client.Post(api.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d: %s", resp.StatusCode, msg)
	}

	post := func(path string, payload any) (int, string) {
		buf, _ := json.Marshal(payload)
		resp, err := client.Post(api.URL+"/v1/campaigns/"+id+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Error(err)
			return 0, ""
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(msg)
	}

	const nGrown = 16
	type ack struct{ worker, object string }
	ackedAnswers := map[ack]bool{}
	var ackedMu sync.Mutex
	var wg sync.WaitGroup

	// Feeder: grow the campaign, one declared object + one record each.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nGrown; i++ {
			o := fmt.Sprintf("grown-%02d", i)
			if code, msg := post("/objects", map[string]any{
				"object": o, "candidates": []string{"NY", "LA", "London"},
			}); code != http.StatusOK {
				t.Errorf("add object %s: %d: %s", o, code, msg)
				return
			}
			if code, msg := post("/records", data.Record{Object: o, Source: "live-src", Value: "NY"}); code != http.StatusOK {
				t.Errorf("add record %s: %d: %s", o, code, msg)
				return
			}
		}
	}()

	// Workers: keep pulling and answering while the corpus grows.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%02d", w)
			for round := 0; round < 8; round++ {
				resp, err := client.Get(fmt.Sprintf("%s/v1/campaigns/%s/task?worker=%s", api.URL, id, worker))
				if err != nil {
					t.Error(err)
					return
				}
				var tl struct {
					Tasks []struct {
						Object     string   `json:"object"`
						Candidates []string `json:"candidates"`
					} `json:"tasks"`
				}
				err = json.NewDecoder(resp.Body).Decode(&tl)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, task := range tl.Tasks {
					code, msg := post("/answer", data.Answer{
						Object: task.Object, Worker: worker, Value: task.Candidates[0],
					})
					if code == http.StatusConflict {
						continue // raced a retry of the same assignment
					}
					if code != http.StatusOK {
						t.Errorf("%s answer %s: %d: %s", worker, task.Object, code, msg)
						return
					}
					ackedMu.Lock()
					ackedAnswers[ack{worker, task.Object}] = true
					ackedMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(ackedAnswers) == 0 {
		t.Fatal("no answers acknowledged")
	}

	// New objects become assignable and reach /truths once folded into a
	// published snapshot: force one and check while the process still lives.
	if code, msg := post("/refresh", nil); code != http.StatusOK {
		t.Fatalf("refresh: %d: %s", code, msg)
	}
	truthsOf := func(h http.Handler) map[string]string {
		rec := doReq(t, h, "GET", "/v1/campaigns/"+id+"/truths", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("truths: %d", rec.Code)
		}
		var truths map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &truths); err != nil {
			t.Fatal(err)
		}
		return truths
	}
	truths := truthsOf(m.Handler())
	for i := 0; i < nGrown; i++ {
		if _, ok := truths[fmt.Sprintf("grown-%02d", i)]; !ok {
			t.Fatalf("grown-%02d missing from live truths", i)
		}
	}

	// Kill -9: abandon the manager with no Close.
	api.Close()

	m2 := mustOpen(t, dir)
	defer m2.Close()
	c, ok := m2.Get(id)
	if !ok {
		t.Fatal("campaign not rediscovered after crash")
	}
	rec := c.Recovered()
	if rec.Answers != len(ackedAnswers) || rec.Objects != nGrown || rec.Records != nGrown ||
		rec.Duplicates != 0 || rec.Skipped != 0 {
		t.Fatalf("recovered %+v, want %d answers, %d objects, %d records",
			rec, len(ackedAnswers), nGrown, nGrown)
	}

	// The restarted campaign serves the full grown corpus.
	h := m2.Handler()
	truths = truthsOf(h)
	if len(truths) != 3+nGrown {
		t.Fatalf("restarted truths cover %d objects, want %d", len(truths), 3+nGrown)
	}

	// Replayed state rejects duplicates of every acknowledged kind.
	if rec := doReq(t, h, "POST", "/v1/campaigns/"+id+"/objects",
		`{"object":"grown-00","candidates":["NY"]}`); rec.Code != http.StatusConflict {
		t.Fatalf("re-adding recovered object: %d, want 409", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns/"+id+"/records",
		`{"object":"grown-00","source":"live-src","value":"LA"}`); rec.Code != http.StatusConflict {
		t.Fatalf("re-adding recovered record: %d, want 409", rec.Code)
	}
	for a := range ackedAnswers {
		body := fmt.Sprintf(`{"worker":%q,"object":%q,"value":"NY"}`, a.worker, a.object)
		if rec := doReq(t, h, "POST", "/v1/campaigns/"+id+"/answer", body); rec.Code != http.StatusConflict {
			t.Fatalf("resubmitted recovered answer: %d, want 409", rec.Code)
		}
		break
	}
}

// TestLegacyAnswersOnlyLogBoots: a campaign whose answers.jsonl predates
// typed events — bare answer lines only — still boots, its answers
// recovered, and new typed events append to the same file (upgrade in
// place, no migration step).
func TestLegacyAnswersOnlyLogBoots(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	if _, err := m.Create(Spec{ID: "legacy", OpenAnswers: true}, testDataset("legacy", 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("legacy"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the pre-eventlog format: overwrite the log with bare lines.
	logPath := filepath.Join(dir, campaignsDir, "legacy", logFile)
	legacy := `{"object":"legacy-o00","worker":"w1","value":"NY"}` + "\n" +
		`{"object":"legacy-o01","worker":"w1","value":"LA"}` + "\n"
	if err := os.WriteFile(logPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, dir)
	c, _ := m2.Get("legacy")
	if rec := c.Recovered(); rec.Answers != 2 || rec.Skipped != 0 {
		t.Fatalf("recovered %+v, want 2 legacy answers", rec)
	}

	// A live mutation appends a typed event to the same file...
	h := m2.Handler()
	if rec := doReq(t, h, "POST", "/v1/campaigns/legacy/objects",
		`{"object":"born-live","candidates":["NY","London"]}`); rec.Code != http.StatusOK {
		t.Fatalf("add object on upgraded log: %d: %s", rec.Code, rec.Body.String())
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and the mixed file replays whole on the next boot.
	m3 := mustOpen(t, dir)
	defer m3.Close()
	c3, _ := m3.Get("legacy")
	if rec := c3.Recovered(); rec.Answers != 2 || rec.Objects != 1 || rec.Skipped != 0 {
		t.Fatalf("mixed replay %+v, want 2 answers + 1 object", rec)
	}
	var truths map[string]string
	out := doReq(t, m3.Handler(), "GET", "/v1/campaigns/legacy/truths", "")
	if err := json.Unmarshal(out.Body.Bytes(), &truths); err != nil {
		t.Fatal(err)
	}
	if _, ok := truths["born-live"]; !ok {
		t.Fatal("object added on the upgraded log missing after restart")
	}
}
