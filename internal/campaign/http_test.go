package campaign

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/data"
)

func doReq(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func createBody(t *testing.T, spec Spec, state State, ds *data.Dataset) string {
	t.Helper()
	var wire bytes.Buffer
	if err := data.Write(&wire, ds); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(&CreateRequest{Spec: spec, State: state, Dataset: wire.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestHTTPLifecycleGate is the satellite HTTP test: paused and closed
// campaigns reject /task and /answer with 409 while the read endpoints
// keep serving; drafts serve nothing.
func TestHTTPLifecycleGate(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	h := m.Handler()

	rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "gate", OpenAnswers: true}, "", testDataset("gate", 6)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body.String())
	}

	reads := []string{"/truths", "/confidence?object=gate-o00", "/trust", "/stats"}
	checkGate := func(wantMutating, wantReads int, phase string) {
		t.Helper()
		if rec := doReq(t, h, "GET", "/v1/campaigns/gate/task?worker=w", ""); rec.Code != wantMutating {
			t.Fatalf("%s: GET /task = %d, want %d: %s", phase, rec.Code, wantMutating, rec.Body.String())
		}
		if rec := doReq(t, h, "POST", "/v1/campaigns/gate/answer",
			`{"worker":"wx","object":"gate-o05","value":"NY"}`); rec.Code != wantMutating {
			t.Fatalf("%s: POST /answer = %d, want %d: %s", phase, rec.Code, wantMutating, rec.Body.String())
		}
		for _, p := range reads {
			if rec := doReq(t, h, "GET", "/v1/campaigns/gate"+p, ""); rec.Code != wantReads {
				t.Fatalf("%s: GET %s = %d, want %d: %s", phase, p, rec.Code, wantReads, rec.Body.String())
			}
		}
	}

	// Draft: everything gated.
	checkGate(409, 409, "draft")
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/start", ""); rec.Code != 200 {
		t.Fatalf("start: %d: %s", rec.Code, rec.Body.String())
	}
	checkGate(200, 200, "live")
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/pause", ""); rec.Code != 200 {
		t.Fatalf("pause: %d: %s", rec.Code, rec.Body.String())
	}
	checkGate(409, 200, "paused")
	// Refresh is mutating too.
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/refresh", ""); rec.Code != 409 {
		t.Fatalf("paused refresh: %d, want 409", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/resume", ""); rec.Code != 200 {
		t.Fatalf("resume: %d: %s", rec.Code, rec.Body.String())
	}
	// Answer one object live so the closed campaign serves non-seed state.
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/answer",
		`{"worker":"w1","object":"gate-o00","value":"NY"}`); rec.Code != 200 {
		t.Fatalf("live answer: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns/gate/close", ""); rec.Code != 200 {
		t.Fatalf("close: %d: %s", rec.Code, rec.Body.String())
	}
	checkGate(409, 200, "closed")
	// Closed is terminal: lifecycle ops conflict.
	for _, op := range []string{"start", "pause", "resume", "close"} {
		if rec := doReq(t, h, "POST", "/v1/campaigns/gate/"+op, ""); rec.Code != 409 {
			t.Fatalf("closed %s: %d, want 409", op, rec.Code)
		}
	}
	// The closed campaign's stats still include both accepted answers (one
	// from the live-phase gate check, one explicit).
	var st struct {
		Answers int `json:"answers"`
	}
	rec = doReq(t, h, "GET", "/v1/campaigns/gate/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Answers != 2 {
		t.Fatalf("closed stats = %s (err %v), want 2 answers", rec.Body.String(), err)
	}
}

func TestHTTPCreateAndList(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	h := m.Handler()

	if rec := doReq(t, h, "GET", "/v1/campaigns", ""); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"campaigns": []`) {
		t.Fatalf("empty list: %d: %s", rec.Code, rec.Body.String())
	}
	// Create one live, one draft.
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "a1", Name: "first"}, StateLive, testDataset("a1", 3))); rec.Code != 201 {
		t.Fatalf("create a1: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "b2"}, "", testDataset("b2", 3))); rec.Code != 201 {
		t.Fatalf("create b2: %d: %s", rec.Code, rec.Body.String())
	}
	var list struct {
		Campaigns []struct {
			ID    string                 `json:"id"`
			State State                  `json:"state"`
			Stats *struct{ Objects int } `json:"stats"`
		} `json:"campaigns"`
	}
	rec := doReq(t, h, "GET", "/v1/campaigns", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != "a1" || list.Campaigns[1].ID != "b2" {
		t.Fatalf("list = %s", rec.Body.String())
	}
	if list.Campaigns[0].State != StateLive || list.Campaigns[0].Stats == nil || list.Campaigns[0].Stats.Objects != 3 {
		t.Fatalf("a1 = %+v", list.Campaigns[0])
	}
	if list.Campaigns[1].State != StateDraft || list.Campaigns[1].Stats != nil {
		t.Fatalf("b2 = %+v", list.Campaigns[1])
	}
	// Detail + errors.
	if rec := doReq(t, h, "GET", "/v1/campaigns/a1", ""); rec.Code != 200 ||
		!strings.Contains(rec.Body.String(), `"name": "first"`) {
		t.Fatalf("detail: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doReq(t, h, "GET", "/v1/campaigns/nope", ""); rec.Code != 404 {
		t.Fatalf("unknown detail: %d", rec.Code)
	}
	if rec := doReq(t, h, "GET", "/v1/campaigns/nope/truths", ""); rec.Code != 404 {
		t.Fatalf("unknown proxy: %d", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns/nope/start", ""); rec.Code != 404 {
		t.Fatalf("unknown lifecycle: %d", rec.Code)
	}
	// Duplicate id and invalid payloads.
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "a1"}, "", testDataset("a1", 3))); rec.Code != 409 {
		t.Fatalf("duplicate create: %d", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns", `{"id":"c3"}`); rec.Code != 400 {
		t.Fatalf("missing dataset: %d", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns", `not json`); rec.Code != 400 {
		t.Fatalf("bad json: %d", rec.Code)
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "c3"}, StateClosed, testDataset("c3", 3))); rec.Code != 400 {
		t.Fatalf("bad initial state: %d", rec.Code)
	}
	// Unknown config names are 422s that list the valid names for the
	// campaign's truth model.
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "c3", Inferencer: "NOPE"}, "", testDataset("c3", 3))); rec.Code != 422 {
		t.Fatalf("unknown inferencer: %d", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "TDH") {
		t.Fatalf("unknown inferencer body should list valid names: %s", rec.Body.String())
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "c3", Assigner: "NOPE"}, "", testDataset("c3", 3))); rec.Code != 422 {
		t.Fatalf("unknown assigner: %d", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "EAI") {
		t.Fatalf("unknown assigner body should list valid names: %s", rec.Body.String())
	}
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "c3", TruthModel: "fuzzy"}, "", testDataset("c3", 3))); rec.Code != 422 {
		t.Fatalf("unknown truth model: %d", rec.Code)
	}
	// EAI reads TDH model internals, so it is not a valid assigner for a
	// numeric campaign.
	if rec := doReq(t, h, "POST", "/v1/campaigns",
		createBody(t, Spec{ID: "c3", TruthModel: "numeric", Assigner: "EAI"}, "", testDataset("c3", 3))); rec.Code != 422 {
		t.Fatalf("numeric+EAI: %d", rec.Code)
	}
}
