package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/hierarchy"
)

// testDataset builds a small deterministic campaign dataset: three sources
// of differing quality claim a place for every object.
func testDataset(name string, objects int) *data.Dataset {
	h := hierarchy.New(hierarchy.Root)
	h.MustAdd("USA", hierarchy.Root)
	h.MustAdd("UK", hierarchy.Root)
	h.MustAdd("NY", "USA")
	h.MustAdd("LA", "USA")
	h.MustAdd("London", "UK")
	h.Freeze()
	ds := &data.Dataset{Name: name, Truth: map[string]string{}, H: h}
	for i := 0; i < objects; i++ {
		o := fmt.Sprintf("%s-o%02d", name, i)
		ds.Records = append(ds.Records,
			data.Record{Object: o, Source: "s1", Value: "NY"},
			data.Record{Object: o, Source: "s2", Value: "USA"},
			data.Record{Object: o, Source: "s3", Value: "LA"},
		)
		ds.Truth[o] = "NY"
	}
	return ds
}

func mustOpen(t *testing.T, dir string) *Manager {
	t.Helper()
	m, err := Open(dir, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLifecycleStateMachine(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	c, err := m.Create(Spec{ID: "sm"}, testDataset("sm", 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateDraft {
		t.Fatalf("new campaign state = %s", c.State())
	}
	if c.Server() != nil {
		t.Fatal("draft campaign must not have a server")
	}
	// Only start is valid from draft.
	for _, op := range []func(string) error{m.Pause, m.Resume, m.CloseCampaign} {
		if err := op("sm"); !errors.Is(err, ErrState) {
			t.Fatalf("transition from draft: err = %v, want ErrState", err)
		}
	}
	if err := m.Start("sm"); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateLive || c.Server() == nil {
		t.Fatalf("after start: state = %s, server = %v", c.State(), c.Server())
	}
	if err := m.Start("sm"); !errors.Is(err, ErrState) {
		t.Fatalf("double start: err = %v, want ErrState", err)
	}
	if err := m.Resume("sm"); !errors.Is(err, ErrState) {
		t.Fatalf("resume live: err = %v, want ErrState", err)
	}
	if err := m.Pause("sm"); err != nil {
		t.Fatal(err)
	}
	if err := m.Pause("sm"); !errors.Is(err, ErrState) {
		t.Fatalf("double pause: err = %v, want ErrState", err)
	}
	if err := m.Resume("sm"); err != nil {
		t.Fatal(err)
	}
	if err := m.CloseCampaign("sm"); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateClosed {
		t.Fatalf("after close: state = %s", c.State())
	}
	// Closed is terminal.
	for _, op := range []func(string) error{m.Start, m.Pause, m.Resume, m.CloseCampaign} {
		if err := op("sm"); !errors.Is(err, ErrState) {
			t.Fatalf("transition from closed: err = %v, want ErrState", err)
		}
	}
	if err := m.Pause("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrNotFound", err)
	}
}

func TestCreateValidation(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	ds := testDataset("v", 2)
	for _, id := range []string{"", "UPPER", "has space", "-lead", "../escape"} {
		if _, err := m.Create(Spec{ID: id}, ds); err == nil {
			t.Fatalf("id %q must be rejected", id)
		}
	}
	if _, err := m.Create(Spec{ID: "v", Inferencer: "NOPE"}, ds); err == nil {
		t.Fatal("unknown inferencer must be rejected")
	}
	if _, err := m.Create(Spec{ID: "v", Assigner: "NOPE"}, ds); err == nil {
		t.Fatal("unknown assigner must be rejected")
	}
	if _, err := m.Create(Spec{ID: "v"}, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(Spec{ID: "v"}, ds); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate id: err = %v, want ErrExists", err)
	}
}

// TestCrashRecoveryRoundTrip is the satellite round-trip: two campaigns
// ingest answers, the process "crashes" (the manager is abandoned without
// Close, so nothing is flushed gracefully), the final write of one log is
// torn, and a fresh manager over the same directory must replay every
// acknowledged answer per campaign — the torn tail skipped, not fatal.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	for _, id := range []string{"alpha", "beta"} {
		if _, err := m.Create(Spec{ID: id, OpenAnswers: true}, testDataset(id, 8)); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(id); err != nil {
			t.Fatal(err)
		}
	}
	// Ingest a different number of answers per campaign, straight through
	// the coordinator (OpenAnswers: no task hand-out needed).
	ingest := map[string]int{"alpha": 5, "beta": 3}
	for id, n := range ingest {
		c, _ := m.Get(id)
		h := c.Server().Handler()
		for i := 0; i < n; i++ {
			body := fmt.Sprintf(`{"worker":"w%d","object":"%s-o%02d","value":"NY"}`, i, id, i)
			rec := doReq(t, h, "POST", "/answer", body)
			if rec.Code != 200 {
				t.Fatalf("%s answer %d: %d: %s", id, i, rec.Code, rec.Body.String())
			}
		}
	}
	// Tear the final write of alpha's log: a crash mid-append leaves a
	// partial line that must not cost any acknowledged answer.
	logPath := filepath.Join(dir, campaignsDir, "alpha", logFile)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"worker":"w9","object":"al`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Crash: no m.Close(). Restart over the same directory.
	m2 := mustOpen(t, dir)
	defer m2.Close()
	for id, n := range ingest {
		c, ok := m2.Get(id)
		if !ok {
			t.Fatalf("campaign %s not rediscovered", id)
		}
		if c.State() != StateLive {
			t.Fatalf("campaign %s state = %s, want live", id, c.State())
		}
		rec := c.Recovered()
		wantSkipped := 0
		if id == "alpha" {
			wantSkipped = 1
		}
		if rec.Answers != n || rec.Skipped != wantSkipped || rec.Duplicates != 0 {
			t.Fatalf("campaign %s recovered %+v, want %d answers, %d skipped", id, rec, n, wantSkipped)
		}
		// The replayed answers are in the serving dataset: the coordinator
		// rejects their resubmission as duplicates.
		h := c.Server().Handler()
		body := fmt.Sprintf(`{"worker":"w0","object":"%s-o00","value":"NY"}`, id)
		if rec := doReq(t, h, "POST", "/answer", body); rec.Code != 409 {
			t.Fatalf("%s replayed answer resubmission: %d, want 409", id, rec.Code)
		}
	}
}

// TestTornCreateIsSkippedAndReclaimable: campaign.json is the creation
// commit point. A directory without one (crash between mkdir/dataset write
// and the meta write) must neither fail the boot of every healthy campaign
// nor poison its id forever.
func TestTornCreateIsSkippedAndReclaimable(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	if _, err := m.Create(Spec{ID: "healthy"}, testDataset("healthy", 3)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	// Simulate a torn create: directory + dataset, no campaign.json.
	torn := filepath.Join(dir, campaignsDir, "torn")
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, datasetFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := mustOpen(t, dir)
	defer m2.Close()
	if _, ok := m2.Get("torn"); ok {
		t.Fatal("torn create must not be registered")
	}
	if _, ok := m2.Get("healthy"); !ok {
		t.Fatal("healthy campaign must survive a sibling's torn create")
	}
	// The id is reclaimable.
	if _, err := m2.Create(Spec{ID: "torn"}, testDataset("torn", 3)); err != nil {
		t.Fatalf("reclaiming a torn id: %v", err)
	}
	if err := m2.Start("torn"); err != nil {
		t.Fatal(err)
	}
}

// TestManagerCloseResumesLive: a graceful shutdown must not demote
// campaign states — live campaigns reopen live.
func TestManagerCloseResumesLive(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	if _, err := m.Create(Spec{ID: "keep"}, testDataset("keep", 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("keep"); err != nil {
		t.Fatal(err)
	}
	if err := m.Pause("keep"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	m2 := mustOpen(t, dir)
	defer m2.Close()
	c, ok := m2.Get("keep")
	if !ok || c.State() != StatePaused {
		t.Fatalf("campaign reopened as %v, want paused", c.State())
	}
	// And a closed campaign reopens closed, still serving reads.
	if err := m2.Resume("keep"); err != nil {
		t.Fatal(err)
	}
	if err := m2.CloseCampaign("keep"); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3 := mustOpen(t, dir)
	defer m3.Close()
	c, _ = m3.Get("keep")
	if c.State() != StateClosed {
		t.Fatalf("closed campaign reopened as %s", c.State())
	}
	if c.Server() == nil {
		t.Fatal("closed campaign must still serve reads")
	}
	if truths := c.Server().Truths(); len(truths) != 3 {
		t.Fatalf("closed campaign truths = %d, want 3", len(truths))
	}
}
