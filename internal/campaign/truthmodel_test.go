package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/engine"
)

// numericDataset builds a numeric campaign seed: three sources report a
// reading per object, one of them biased, no value hierarchy.
func numericDataset(name string, objects int) *data.Dataset {
	ds := &data.Dataset{Name: name, Truth: map[string]string{}}
	for i := 0; i < objects; i++ {
		o := fmt.Sprintf("%s-n%02d", name, i)
		ds.Records = append(ds.Records,
			data.Record{Object: o, Source: "s1", Value: "10"},
			data.Record{Object: o, Source: "s2", Value: "10.4"},
			data.Record{Object: o, Source: "s3", Value: "19"},
		)
		ds.Truth[o] = "10.2"
	}
	return ds
}

// TestListTruthModelFilter is the satellite table-driven handler test for
// GET /v1/campaigns: truth_model appears on every item, ?truth_model=
// filters alongside ?state=, and bad values 400.
func TestListTruthModelFilter(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	h := m.Handler()

	for _, c := range []struct {
		id    string
		spec  Spec
		state State
		ds    *data.Dataset
	}{
		{"cat-a", Spec{ID: "cat-a"}, StateLive, testDataset("cat-a", 3)},
		{"cat-b", Spec{ID: "cat-b", TruthModel: "categorical"}, "", testDataset("cat-b", 3)},
		{"num-a", Spec{ID: "num-a", TruthModel: "numeric"}, StateLive, numericDataset("num-a", 3)},
		{"set-a", Spec{ID: "set-a", TruthModel: "multi_truth", Inferencer: "DART"}, "", testDataset("set-a", 3)},
	} {
		if rec := doReq(t, h, "POST", "/v1/campaigns", createBody(t, c.spec, c.state, c.ds)); rec.Code != 201 {
			t.Fatalf("create %s: %d: %s", c.id, rec.Code, rec.Body.String())
		}
	}

	list := func(query string) map[string]string {
		t.Helper()
		rec := doReq(t, h, "GET", "/v1/campaigns"+query, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("list%s: %d: %s", query, rec.Code, rec.Body.String())
		}
		var out struct {
			Campaigns []struct {
				ID         string `json:"id"`
				TruthModel string `json:"truth_model"`
			} `json:"campaigns"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		models := map[string]string{}
		for _, c := range out.Campaigns {
			models[c.ID] = c.TruthModel
		}
		return models
	}

	// Every item carries its truth model (explicit or defaulted).
	all := list("")
	want := map[string]string{
		"cat-a": "categorical", "cat-b": "categorical",
		"num-a": "numeric", "set-a": "multi_truth",
	}
	if len(all) != len(want) {
		t.Fatalf("list = %v", all)
	}
	for id, tm := range want {
		if all[id] != tm {
			t.Fatalf("campaign %s truth_model = %q, want %q", id, all[id], tm)
		}
	}

	cases := []struct {
		query string
		want  []string
	}{
		{"?truth_model=categorical", []string{"cat-a", "cat-b"}},
		{"?truth_model=numeric", []string{"num-a"}},
		{"?truth_model=multi_truth", []string{"set-a"}},
		{"?truth_model=numeric&state=live", []string{"num-a"}},
		{"?truth_model=numeric&state=draft", nil},
		{"?truth_model=categorical&state=draft", []string{"cat-b"}},
		{"?truth_model=multi_truth&state=draft", []string{"set-a"}},
	}
	for _, tc := range cases {
		got := list(tc.query)
		if len(got) != len(tc.want) {
			t.Errorf("%s -> %v, want %v", tc.query, got, tc.want)
			continue
		}
		for _, id := range tc.want {
			if _, ok := got[id]; !ok {
				t.Errorf("%s missing %s (got %v)", tc.query, id, got)
			}
		}
	}
	if rec := doReq(t, h, "GET", "/v1/campaigns?truth_model=fuzzy", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad truth_model filter: %d, want 400", rec.Code)
	}
}

// TestCategoricalKAndSeedHonored is the satellite-6 regression: with the
// infer.TDH type-assertion special case gone from campaign boot (engine
// construction owns the wiring), a categorical campaign still honors its
// per-campaign K for /task sizing and its seed for assigner sampling —
// deterministically, so two same-seed campaigns hand identical tasks.
func TestCategoricalKAndSeedHonored(t *testing.T) {
	m := mustOpen(t, t.TempDir())
	defer m.Close()
	h := m.Handler()

	for _, id := range []string{"seed-a", "seed-b"} {
		spec := Spec{ID: id, K: 2, Seed: 99, Assigner: "QASCA"}
		if rec := doReq(t, h, "POST", "/v1/campaigns", createBody(t, spec, StateLive, testDataset("same", 8))); rec.Code != 201 {
			t.Fatalf("create %s: %d: %s", id, rec.Code, rec.Body.String())
		}
	}

	tasks := func(id, worker string) []string {
		t.Helper()
		rec := doReq(t, h, "GET", "/v1/campaigns/"+id+"/task?worker="+worker, "")
		if rec.Code != 200 {
			t.Fatalf("%s task: %d: %s", id, rec.Code, rec.Body.String())
		}
		var out struct {
			Tasks []struct {
				Object string `json:"object"`
			} `json:"tasks"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		objs := make([]string, len(out.Tasks))
		for i, tk := range out.Tasks {
			objs[i] = tk.Object
		}
		return objs
	}

	a := tasks("seed-a", "w1")
	b := tasks("seed-b", "w1")
	if len(a) != 2 {
		t.Fatalf("K=2 campaign handed %d tasks: %v", len(a), a)
	}
	if !equalStrings(a, b) {
		t.Fatalf("same seed, same dataset, different assignments: %v vs %v", a, b)
	}

	// The persisted meta carries the knobs across restarts.
	c, _ := m.Get("seed-a")
	meta := c.Meta()
	if meta.K != 2 || meta.Seed != 99 || meta.TruthModel != string(engine.Categorical) {
		t.Fatalf("meta = %+v", meta)
	}
}

// TestEndToEndTruthModelsCrashRecovery is the acceptance test: one campaign
// per truth model created over the v1 API, concurrent workers ingesting
// typed answers into all three, a kill -9 (the manager is abandoned without
// Close, so nothing flushes gracefully), and a reopen that must replay
// every acknowledged answer — zero loss, typed payloads intact, per-model
// /truths shapes served from the recovered state.
func TestEndToEndTruthModelsCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	h := m.Handler()

	const objects = 10
	specs := []Spec{
		{ID: "e2e-cat", OpenAnswers: true},
		{ID: "e2e-num", TruthModel: "numeric", OpenAnswers: true},
		{ID: "e2e-set", TruthModel: "multi_truth", Inferencer: "DART", OpenAnswers: true},
	}
	datasets := map[string]*data.Dataset{
		"e2e-cat": testDataset("e2e-cat", objects),
		"e2e-num": numericDataset("e2e-num", objects),
		"e2e-set": testDataset("e2e-set", objects),
	}
	for _, spec := range specs {
		if rec := doReq(t, h, "POST", "/v1/campaigns",
			createBody(t, spec, StateLive, datasets[spec.ID])); rec.Code != 201 {
			t.Fatalf("create %s: %d: %s", spec.ID, rec.Code, rec.Body.String())
		}
	}

	// answerBody builds the model-typed payload for (worker w, object o).
	answerBody := func(id string, w, o int) string {
		worker := fmt.Sprintf("w%02d", w)
		switch id {
		case "e2e-num":
			object := fmt.Sprintf("%s-n%02d", id, o)
			if o%2 == 0 { // alternate the two numeric spellings
				return fmt.Sprintf(`{"worker":%q,"object":%q,"num":%g}`, worker, object, 10.0+float64(w)/10)
			}
			return fmt.Sprintf(`{"worker":%q,"object":%q,"value":"%g"}`, worker, object, 10.0+float64(w)/10)
		case "e2e-set":
			object := fmt.Sprintf("%s-o%02d", id, o)
			return fmt.Sprintf(`{"worker":%q,"object":%q,"values":["NY","USA"]}`, worker, object)
		default:
			object := fmt.Sprintf("%s-o%02d", id, o)
			return fmt.Sprintf(`{"worker":%q,"object":%q,"value":"NY"}`, worker, object)
		}
	}

	// Concurrent ingest: 4 workers per campaign, each answering every
	// object. Every (worker, object) pair is distinct, so every submission
	// must be acknowledged.
	const workersPer = 4
	var acked [3]atomic.Int64
	var wg sync.WaitGroup
	for ci, spec := range specs {
		for w := 0; w < workersPer; w++ {
			wg.Add(1)
			go func(ci int, id string, w int) {
				defer wg.Done()
				for o := 0; o < objects; o++ {
					rec := doReq(t, h, "POST", "/v1/campaigns/"+id+"/answer", answerBody(id, w, o))
					if rec.Code != 200 {
						t.Errorf("%s w%d o%d: %d: %s", id, w, o, rec.Code, rec.Body.String())
						continue
					}
					acked[ci].Add(1)
				}
			}(ci, spec.ID, w)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Crash: abandon the manager without Close. Nothing was flushed beyond
	// the per-answer durable ack.
	m2 := mustOpen(t, dir)
	defer m2.Close()
	h2 := m2.Handler()

	for ci, spec := range specs {
		c, ok := m2.Get(spec.ID)
		if !ok {
			t.Fatalf("campaign %s not rediscovered", spec.ID)
		}
		if c.State() != StateLive {
			t.Fatalf("%s state = %s, want live", spec.ID, c.State())
		}
		wantModel := spec.TruthModel
		if wantModel == "" {
			wantModel = string(engine.Categorical)
		}
		if c.Meta().TruthModel != wantModel {
			t.Fatalf("%s truth_model = %q, want %q", spec.ID, c.Meta().TruthModel, wantModel)
		}
		rec := c.Recovered()
		if int64(rec.Answers) != acked[ci].Load() || rec.Skipped != 0 || rec.Duplicates != 0 {
			t.Fatalf("%s recovered %+v, want %d answers with zero loss", spec.ID, rec, acked[ci].Load())
		}
		// Replayed answers are live state: resubmission is a duplicate.
		if rec := doReq(t, h2, "POST", "/v1/campaigns/"+spec.ID+"/answer",
			answerBody(spec.ID, 0, 0)); rec.Code != 409 {
			t.Fatalf("%s resubmission after recovery: %d, want 409: %s", spec.ID, rec.Code, rec.Body.String())
		}
	}

	// The recovered states serve their per-model /truths shapes.
	var cat map[string]string
	body := doReq(t, h2, "GET", "/v1/campaigns/e2e-cat/truths", "").Body.Bytes()
	if err := json.Unmarshal(body, &cat); err != nil || len(cat) != objects {
		t.Fatalf("categorical truths = %s (err %v)", body, err)
	}
	var num map[string]float64
	body = doReq(t, h2, "GET", "/v1/campaigns/e2e-num/truths", "").Body.Bytes()
	if err := json.Unmarshal(body, &num); err != nil || len(num) != objects {
		t.Fatalf("numeric truths = %s (err %v)", body, err)
	}
	// The workers' readings cluster near 10; the replayed answers must pull
	// CRH well below the biased source's 19.
	if est := num["e2e-num-n00"]; est <= 0 || est >= 19 {
		t.Fatalf("numeric estimate = %g, want within the claimed range", est)
	}
	var sets map[string][]string
	body = doReq(t, h2, "GET", "/v1/campaigns/e2e-set/truths", "").Body.Bytes()
	if err := json.Unmarshal(body, &sets); err != nil || len(sets) != objects {
		t.Fatalf("multi-truth truths = %s (err %v)", body, err)
	}
	if len(sets["e2e-set-o00"]) == 0 {
		t.Fatalf("empty recovered truth set: %v", sets["e2e-set-o00"])
	}

	// Typed payloads survived the replay byte-for-byte: the numeric answers
	// carry Num, the multi-truth answers their full value set.
	numSrv, _ := m2.Get("e2e-num")
	foundNum := false
	for _, a := range numSrv.Server().Snapshot().Idx.DS.Answers {
		if a.Num != nil {
			foundNum = true
			break
		}
	}
	if !foundNum {
		t.Fatal("no replayed numeric answer kept its typed Num payload")
	}
	setSrv, _ := m2.Get("e2e-set")
	foundSet := false
	for _, a := range setSrv.Server().Snapshot().Idx.DS.Answers {
		if len(a.Values) == 2 {
			foundSet = true
			break
		}
	}
	if !foundSet {
		t.Fatal("no replayed multi-truth answer kept its value set")
	}
}
