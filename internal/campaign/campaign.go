// Package campaign hosts many concurrent truth-discovery campaigns in one
// process. A Campaign is a first-class managed entity — a named instance of
// the crowdsourcing coordinator (internal/server) with its own dataset,
// durable event log and per-campaign configuration — owned by a Manager
// that keeps a registry of every campaign under one data directory,
// recovers them all at boot, and exposes the admin + data-plane HTTP API
// under /v1/campaigns (http.go).
//
// Campaigns are open-world: beyond answers, the per-campaign event log
// (internal/eventlog) records typed add_object / add_record mutations, so a
// live campaign's dataset keeps growing while workers answer and the whole
// history — answers and growth interleaved — replays at boot. Logs written
// by the older answers-only format upgrade in place: bare answer lines and
// typed events coexist in one file.
//
// Lifecycle. Every campaign moves through a state machine that is enforced
// at the HTTP layer:
//
//	draft ──start──▶ live ◀──resume── paused
//	                  │  ──pause────▶
//	                  │        │
//	                  └─close──┴────▶ closed (terminal)
//
// A draft campaign exists on disk (dataset uploaded, config fixed) but
// serves nothing. A live campaign serves everything. Paused and closed
// campaigns keep serving reads (/truths, /confidence, /trust, /stats) but
// reject task hand-out and answer ingestion with 409, so a campaign can be
// halted for inspection — or ended — without taking its results offline.
//
// On-disk layout (one directory per campaign under <data-dir>/campaigns):
//
//	<data-dir>/campaigns/<id>/campaign.json  metadata, config and state
//	<data-dir>/campaigns/<id>/dataset.json   seed dataset + value hierarchy
//	<data-dir>/campaigns/<id>/answers.jsonl  append-only event log (answers
//	                                         + dataset mutations; the name
//	                                         is kept for compatibility with
//	                                         answers-only campaigns)
package campaign

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/eventlog"
	"repro/internal/obs"
	"repro/internal/server"
)

// State is a campaign's lifecycle state.
type State string

const (
	StateDraft  State = "draft"
	StateLive   State = "live"
	StatePaused State = "paused"
	StateClosed State = "closed"
)

func (s State) valid() bool {
	switch s {
	case StateDraft, StateLive, StatePaused, StateClosed:
		return true
	}
	return false
}

// PolicySpec is the JSON-friendly shape of server.RefitPolicy (durations as
// milliseconds), persisted per campaign. Zero values take the server
// defaults; negative values disable, mirroring RefitPolicy.
type PolicySpec struct {
	RefitAnswers     int   `json:"refit_answers,omitempty"`
	RefitStalenessMS int64 `json:"refit_staleness_ms,omitempty"`
	BatchSize        int   `json:"batch_size,omitempty"`
	QueueSize        int   `json:"queue_size,omitempty"`
	// Shards sets the campaign's ingest shard count (0 = server default:
	// GOMAXPROCS capped at 8; <0 = 1).
	Shards int `json:"shards,omitempty"`
	// RejectQueueDepth, when > 0, turns on admission control: answers
	// targeting a shard with at least this many accepted-but-unfolded items
	// are rejected with 429 + Retry-After instead of blocking (0 keeps
	// blocking backpressure).
	RejectQueueDepth int `json:"reject_queue_depth,omitempty"`
}

func (p PolicySpec) refitPolicy() server.RefitPolicy {
	return server.RefitPolicy{
		MaxAnswers:       p.RefitAnswers,
		MaxStaleness:     time.Duration(p.RefitStalenessMS) * time.Millisecond,
		BatchSize:        p.BatchSize,
		QueueSize:        p.QueueSize,
		Shards:           p.Shards,
		RejectQueueDepth: p.RejectQueueDepth,
	}
}

// Meta is the persisted identity, configuration and lifecycle state of a
// campaign (campaign.json).
type Meta struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"`
	// TruthModel is the campaign's truth-model engine (categorical /
	// numeric / multi_truth). Absent in campaign.json files from before
	// truth models existed; readMeta normalizes the empty value to
	// categorical so existing data directories boot unchanged.
	TruthModel  string     `json:"truth_model,omitempty"`
	Inferencer  string     `json:"inferencer"`
	Assigner    string     `json:"assigner"`
	K           int        `json:"k"`
	Seed        int64      `json:"seed"`
	OpenAnswers bool       `json:"open_answers,omitempty"`
	Policy      PolicySpec `json:"policy,omitempty"`
	CreatedAt   time.Time  `json:"created_at"`
	UpdatedAt   time.Time  `json:"updated_at"`
}

// Campaign is one hosted campaign: persisted Meta plus, once started, the
// live coordinator and its answer log. All mutable fields are guarded by
// mu; the Manager holds no lock while a campaign boots or shuts down, so
// slow campaigns never block the registry.
type Campaign struct {
	dir string

	mu        sync.Mutex
	meta      Meta
	srv       *server.Server // nil while draft
	log       *eventlog.Log  // nil while draft or closed
	handler   http.Handler   // srv.Handler(), nil while draft
	recovered eventlog.ReplayResult
}

// ID returns the campaign's immutable identifier.
func (c *Campaign) ID() string { return c.meta.ID }

// State returns the current lifecycle state.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta.State
}

// Meta returns a copy of the persisted metadata.
func (c *Campaign) Meta() Meta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta
}

// Recovered reports what the boot-time log replay recovered for this
// campaign (zero for campaigns started fresh in this process).
func (c *Campaign) Recovered() eventlog.ReplayResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recovered
}

// Server exposes the underlying coordinator, or nil for a draft campaign.
// Callers must treat it as read-only with respect to lifecycle: Close is
// the Manager's job.
func (c *Campaign) Server() *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srv
}

// serveInfo returns what the HTTP gate needs in one critical section: the
// lifecycle state and the data-plane handler (nil while draft).
func (c *Campaign) serveInfo() (State, http.Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta.State, c.handler
}

// metricsRegistry returns the campaign's metrics registry, or nil while the
// campaign is a draft (no coordinator, nothing to scrape).
func (c *Campaign) metricsRegistry() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srv == nil {
		return nil
	}
	return c.srv.Metrics()
}

// boot loads the campaign's dataset, replays its event log into it —
// answers, object adds and record adds interleaved in acknowledgment order
// — and starts the coordinator. With openLog, the log is opened for
// appending and wired as the server's durable answer AND mutation sink
// (live/paused campaigns); closed campaigns boot without a log, serving
// reads off the recovered state. Callers hold c.mu.
func (c *Campaign) boot(opts Options, openLog bool) error {
	ds, err := data.LoadFile(filepath.Join(c.dir, datasetFile))
	if err != nil {
		return fmt.Errorf("campaign %s: dataset: %w", c.meta.ID, err)
	}
	logPath := filepath.Join(c.dir, logFile)
	rec, err := eventlog.Replay(logPath, ds)
	if err != nil {
		return fmt.Errorf("campaign %s: replay: %w", c.meta.ID, err)
	}
	// Engine construction owns all model-specific wiring — including TDH's
	// E-step parallelism, which used to be a type-assertion special case
	// here. Unknown names surface as ErrConfig (HTTP 422), not as an opaque
	// boot error.
	tm, err := engine.ParseTruthModel(c.meta.TruthModel)
	if err != nil {
		return fmt.Errorf("campaign %s: %w: %v", c.meta.ID, ErrConfig, err)
	}
	eng, err := engine.New(tm, c.meta.Inferencer, engine.Config{Workers: opts.Workers, Seed: c.meta.Seed})
	if err != nil {
		return fmt.Errorf("campaign %s: %w: %v", c.meta.ID, ErrConfig, err)
	}
	assigner, err := engine.NewAssigner(tm, c.meta.Assigner)
	if err != nil {
		return fmt.Errorf("campaign %s: %w: %v", c.meta.ID, ErrConfig, err)
	}
	// One registry per campaign, shared by the coordinator and its event
	// log; the Manager scrapes them all under a campaign label (GET
	// /metrics) and each campaign serves its own at
	// /v1/campaigns/{id}/metrics.
	reg := obs.NewRegistry()
	// Every log line from this campaign's coordinator and event log carries
	// the campaign id, so one process hosting many campaigns stays greppable.
	clog := opts.logger().With("campaign", c.meta.ID)
	cfg := server.Config{
		Dataset:     ds,
		Engine:      eng,
		Assigner:    assigner,
		K:           c.meta.K,
		Seed:        c.meta.Seed,
		Policy:      c.meta.Policy.refitPolicy(),
		OpenAnswers: c.meta.OpenAnswers,
		Metrics:     reg,
		Logger:      clog,
	}
	var l *eventlog.Log
	if openLog {
		if l, err = eventlog.Open(logPath,
			eventlog.WithMetrics(eventlog.NewMetrics(reg)), eventlog.WithLogger(clog)); err != nil {
			return fmt.Errorf("campaign %s: %w", c.meta.ID, err)
		}
		cfg.Log = l
		cfg.Mutations = l
	}
	srv, err := server.New(cfg)
	if err != nil {
		if l != nil {
			l.Close()
		}
		return fmt.Errorf("campaign %s: %w", c.meta.ID, err)
	}
	c.srv, c.log, c.handler, c.recovered = srv, l, srv.Handler(), rec
	return nil
}

// shutdown releases the campaign's process resources (coordinator pipeline
// and log file handle) without touching its persisted state, so a restart
// resumes the campaign where it stopped. Used by Manager.Close.
func (c *Campaign) shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srv != nil {
		_ = c.srv.Close()
	}
	if c.log != nil {
		_ = c.log.Close()
		c.log = nil
	}
}

// persistMeta writes campaign.json atomically (temp file + rename, fsync'd
// before the rename) so a crash mid-transition leaves either the old or
// the new state, never a torn file. Callers hold c.mu.
func (c *Campaign) persistMeta() error {
	c.meta.UpdatedAt = time.Now().UTC()
	buf, err := json.MarshalIndent(&c.meta, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(c.dir, metaFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(c.dir, metaFile))
}

func readMeta(dir string) (Meta, error) {
	var meta Meta
	buf, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(buf, &meta); err != nil {
		return meta, fmt.Errorf("campaign: %s: %w", metaFile, err)
	}
	if !meta.State.valid() {
		return meta, fmt.Errorf("campaign: %s: invalid state %q", metaFile, meta.State)
	}
	if meta.TruthModel == "" {
		// Pre-truth-model campaign.json: the only model that existed.
		meta.TruthModel = string(engine.Categorical)
	}
	return meta, nil
}
