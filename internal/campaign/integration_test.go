package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/data"
)

// TestMultiCampaignEndToEnd is the acceptance test: one manager process
// serves two concurrent campaigns end-to-end over the v1 API — created by
// POST /v1/campaigns, workers pulling and answering per campaign in
// parallel (run under -race) — then the process dies kill-9 style (no
// graceful Close) and a restart must recover both campaigns with zero
// acknowledged answers lost.
func TestMultiCampaignEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m := mustOpen(t, dir)
	api := httptest.NewServer(m.Handler())
	defer api.Close()
	client := api.Client()

	ids := []string{"east", "west"}
	for _, id := range ids {
		body := createBody(t, Spec{ID: id, K: 4, Seed: 11}, StateLive, testDataset(id, 40))
		resp, err := client.Post(api.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: %d: %s", id, resp.StatusCode, msg)
		}
	}

	// Per campaign: 6 workers, each pulling assigned tasks and answering
	// every one of them for 3 rounds, all campaigns and workers concurrent.
	type ack struct{ worker, object string }
	acked := map[string]map[ack]bool{}
	var ackedMu sync.Mutex
	for _, id := range ids {
		acked[id] = map[ack]bool{}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(ids)*6)
	for _, id := range ids {
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(id string, w int) {
				defer wg.Done()
				worker := fmt.Sprintf("w%02d", w)
				for round := 0; round < 3; round++ {
					resp, err := client.Get(fmt.Sprintf("%s/v1/campaigns/%s/task?worker=%s", api.URL, id, worker))
					if err != nil {
						errCh <- err
						return
					}
					var tl struct {
						Tasks []struct {
							Object     string   `json:"object"`
							Candidates []string `json:"candidates"`
						} `json:"tasks"`
					}
					err = json.NewDecoder(resp.Body).Decode(&tl)
					resp.Body.Close()
					if err != nil {
						errCh <- err
						return
					}
					for _, task := range tl.Tasks {
						body, _ := json.Marshal(data.Answer{Object: task.Object, Worker: worker, Value: task.Candidates[0]})
						resp, err := client.Post(fmt.Sprintf("%s/v1/campaigns/%s/answer", api.URL, id),
							"application/json", bytes.NewReader(body))
						if err != nil {
							errCh <- err
							return
						}
						msg, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errCh <- fmt.Errorf("%s/%s answer %s: %d: %s", id, worker, task.Object, resp.StatusCode, msg)
							return
						}
						// Acknowledged with 200: this answer is durable and
						// must survive the crash below.
						ackedMu.Lock()
						acked[id][ack{worker, task.Object}] = true
						ackedMu.Unlock()
					}
				}
			}(id, w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for _, id := range ids {
		if len(acked[id]) == 0 {
			t.Fatalf("campaign %s: no answers acknowledged", id)
		}
	}

	// Kill -9: the manager is abandoned mid-flight with no Close — queued
	// inference state and open file handles die with the "process".
	api.Close()

	m2 := mustOpen(t, dir)
	defer m2.Close()
	for _, id := range ids {
		c, ok := m2.Get(id)
		if !ok {
			t.Fatalf("campaign %s not rediscovered after crash", id)
		}
		rec := c.Recovered()
		if rec.Answers != len(acked[id]) || rec.Duplicates != 0 {
			t.Fatalf("campaign %s: recovered %+v, want every one of the %d acknowledged answers",
				id, rec, len(acked[id]))
		}
		// Spot-check through the API of the restarted process: stats serve
		// and resubmitting a recovered answer is a duplicate.
		h := m2.Handler()
		if rec := doReq(t, h, "GET", "/v1/campaigns/"+id+"/stats", ""); rec.Code != 200 {
			t.Fatalf("%s stats after restart: %d", id, rec.Code)
		}
		for a := range acked[id] {
			body := fmt.Sprintf(`{"worker":%q,"object":%q,"value":"NY"}`, a.worker, a.object)
			if rec := doReq(t, h, "POST", "/v1/campaigns/"+id+"/answer", body); rec.Code != 409 {
				t.Fatalf("%s resubmitted recovered answer: %d, want 409", id, rec.Code)
			}
			break
		}
	}
}
