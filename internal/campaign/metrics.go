package campaign

import (
	"net/http"
	"sort"

	"repro/internal/obs"
)

// The manager's aggregated GET /metrics: every booted campaign's registry
// (coordinator + event log instruments, see internal/server and
// internal/eventlog) scraped in one pass with a campaign label injected
// into each series, plus the manager's own registry-level gauges. Each
// campaign also serves its own unlabeled registry at
// /v1/campaigns/{id}/metrics through the data-plane proxy.

// newManagerMetrics registers the registry-level gauges: campaign counts by
// lifecycle state, evaluated at scrape time.
func newManagerMetrics(m *Manager) *obs.Registry {
	reg := obs.NewRegistry()
	for _, st := range []State{StateDraft, StateLive, StatePaused, StateClosed} {
		st := st
		reg.GaugeFunc("tdh_campaigns", "registered campaigns by lifecycle state",
			func() float64 {
				// Campaigns() copies the list under the registry lock and
				// releases it before State() takes each campaign lock, so the
				// scrape never holds both locks at once (withCampaign acquires
				// them in the opposite order).
				n := 0
				for _, c := range m.Campaigns() {
					if c.State() == st {
						n++
					}
				}
				return float64(n)
			},
			"state", string(st))
	}
	return reg
}

// handleMetrics serves the aggregated scrape. Campaign families carry the
// campaign label; manager families carry none; the merged output stays
// sorted by family name so scrapes are deterministic.
func (m *Manager) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var regs []obs.LabeledRegistry
	for _, c := range m.Campaigns() {
		if reg := c.metricsRegistry(); reg != nil {
			regs = append(regs, obs.LabeledRegistry{Value: c.ID(), Registry: reg})
		}
	}
	fams := append(m.metrics.Gather(), obs.MergeLabeled("campaign", regs)...)
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteText(w, fams)
}
