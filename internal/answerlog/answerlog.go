// Package answerlog provides a durable append-only log for crowdsourcing
// answers: one JSON object per line, fsync'd per append. A campaign
// coordinator (internal/server) writes every accepted answer to the log;
// after a crash or restart, Replay folds the collected answers back into
// the dataset so the campaign resumes where it stopped — crowd answers are
// paid for and must never be lost.
package answerlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/data"
)

// Log is an append-only JSONL answer log. Append is safe for concurrent
// use.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    int
}

// Open opens (or creates) the log at path in append mode.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("answerlog: %w", err)
	}
	return &Log{f: f, path: path}, nil
}

// Append writes one answer and syncs it to stable storage.
func (l *Log) Append(a data.Answer) error {
	if a.Object == "" || a.Worker == "" || a.Value == "" {
		return errors.New("answerlog: answer with empty field")
	}
	buf, err := json.Marshal(a)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("answerlog: closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("answerlog: write: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("answerlog: sync: %w", err)
	}
	l.n++
	return nil
}

// Count returns the number of answers appended through this handle.
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close closes the underlying file; further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ReplayResult reports what a Replay recovered.
type ReplayResult struct {
	Answers    int // valid answers recovered
	Skipped    int // malformed lines skipped (e.g. torn final write)
	Duplicates int // duplicate (worker, object) answers dropped
}

// Replay reads a log and appends the recovered answers to ds. Malformed
// lines — a torn write from a crash mid-append can only be the last line,
// but any malformed line is tolerated — are counted and skipped rather
// than failing the whole recovery. Duplicate (worker, object) answers —
// whether repeated within the log or already present in the dataset — are
// dropped and counted, so a replayed answer can never be double-counted by
// inference.
func Replay(path string, ds *data.Dataset) (ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ReplayResult{}, nil // no log yet: empty campaign
		}
		return ReplayResult{}, fmt.Errorf("answerlog: %w", err)
	}
	defer f.Close()
	return ReplayFrom(f, ds)
}

// ReplayFrom is Replay over any reader (exposed for tests and piping).
func ReplayFrom(r io.Reader, ds *data.Dataset) (ReplayResult, error) {
	var res ReplayResult
	type key struct{ worker, object string }
	seen := make(map[key]bool, len(ds.Answers))
	for _, a := range ds.Answers {
		seen[key{a.Worker, a.Object}] = true
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var a data.Answer
		if err := json.Unmarshal(line, &a); err != nil || a.Object == "" || a.Worker == "" || a.Value == "" {
			res.Skipped++
			continue
		}
		k := key{a.Worker, a.Object}
		if seen[k] {
			res.Duplicates++
			continue
		}
		seen[k] = true
		ds.Answers = append(ds.Answers, a)
		res.Answers++
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("answerlog: scan: %w", err)
	}
	return res, nil
}
