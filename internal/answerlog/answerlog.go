// Package answerlog provides a durable append-only log for crowdsourcing
// answers: one JSON object per line, fsync'd before the append returns. A
// campaign coordinator (internal/server) writes every accepted answer to
// the log; after a crash or restart, Replay folds the collected answers
// back into the dataset so the campaign resumes where it stopped — crowd
// answers are paid for and must never be lost.
//
// Appends are group-committed: a single flusher goroutine gathers every
// append that arrives while the previous fsync is in flight and commits
// the whole batch with one write + one fsync, acknowledging each Append
// only after its batch is on stable storage. Durability per answer is
// unchanged; the fsync cost is amortized across concurrent appenders, which
// is what keeps ingest alive once many campaigns share a disk.
package answerlog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/data"
)

var errClosed = errors.New("answerlog: closed")

// Log is an append-only JSONL answer log. Append is safe for concurrent
// use.
type Log struct {
	path string
	f    *os.File      // written and synced only by the flusher after Open
	kick chan struct{} // wakes the flusher; buffered, never closed
	quit chan struct{} // closed by Close after the last Append is enqueued
	done chan struct{} // closed when the flusher has drained and exited
	torn bool          // flusher-owned: a failed write left unterminated bytes

	mu      sync.Mutex
	closed  bool
	pending []byte       // marshaled lines awaiting the next group commit
	waiters []chan error // one ack per pending Append
	n       int
}

// Open opens (or creates) the log at path in append mode and starts the
// flusher.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("answerlog: %w", err)
	}
	l := &Log{
		path: path,
		f:    f,
		kick: make(chan struct{}, 1),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go l.flushLoop()
	return l, nil
}

// Append stages one answer for the next group commit and blocks until it
// is synced to stable storage (or the commit fails). Concurrent Appends
// that land during the previous fsync share a single write+fsync.
func (l *Log) Append(a data.Answer) error {
	if a.Object == "" || a.Worker == "" || a.Value == "" {
		return errors.New("answerlog: answer with empty field")
	}
	buf, err := json.Marshal(a)
	if err != nil {
		return err
	}
	ack := make(chan error, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	l.pending = append(l.pending, buf...)
	l.pending = append(l.pending, '\n')
	l.waiters = append(l.waiters, ack)
	l.mu.Unlock()
	select {
	case l.kick <- struct{}{}:
	default: // a wakeup is already queued; the flusher will see this entry
	}
	return <-ack
}

// flushLoop is the single flusher goroutine: each wakeup commits the
// entire pending batch with one write + one fsync and acknowledges every
// waiter. On quit it drains whatever Close guaranteed was already staged.
func (l *Log) flushLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.kick:
			l.commit()
		case <-l.quit:
			l.commit()
			return
		}
	}
}

// commit swaps out the staged batch and syncs it to disk, then wakes the
// waiters with the outcome. File I/O runs outside the stage lock so
// appenders keep staging the next batch during the fsync.
func (l *Log) commit() {
	l.mu.Lock()
	buf, waiters := l.pending, l.waiters
	l.pending, l.waiters = nil, nil
	l.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	if l.torn {
		// A previous batch's failed write left unterminated bytes in the
		// file. Terminate them so they replay as one skipped malformed line
		// instead of merging with (and swallowing) this batch's first line.
		buf = append([]byte{'\n'}, buf...)
	}
	var err error
	if n, werr := l.f.Write(buf); werr != nil {
		err = fmt.Errorf("answerlog: write: %w", werr)
		l.torn = n > 0 && buf[n-1] != '\n'
	} else if serr := l.f.Sync(); serr != nil {
		err = fmt.Errorf("answerlog: sync: %w", serr)
		l.torn = false // fully written and newline-terminated, just not synced
	} else {
		l.torn = false
	}
	if err == nil {
		l.mu.Lock()
		l.n += len(waiters)
		l.mu.Unlock()
	}
	for _, ack := range waiters {
		ack <- err
	}
}

// Count returns the number of answers committed through this handle.
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Close commits any staged answers, stops the flusher and closes the
// file; further Appends fail. Appends that were already staged are synced
// and acknowledged normally.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done // a concurrent Close wins; wait for its drain
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	return l.f.Close()
}

// ReplayResult reports what a Replay recovered.
type ReplayResult struct {
	Answers    int `json:"answers"`    // valid answers recovered
	Skipped    int `json:"skipped"`    // malformed lines skipped (e.g. torn final write)
	Duplicates int `json:"duplicates"` // duplicate (worker, object) answers dropped
}

// Replay reads a log and appends the recovered answers to ds. Malformed
// lines — a torn write from a crash mid-append can only be the last line,
// but any malformed line is tolerated — are counted and skipped rather
// than failing the whole recovery. Duplicate (worker, object) answers —
// whether repeated within the log or already present in the dataset — are
// dropped and counted, so a replayed answer can never be double-counted by
// inference.
func Replay(path string, ds *data.Dataset) (ReplayResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return ReplayResult{}, nil // no log yet: empty campaign
		}
		return ReplayResult{}, fmt.Errorf("answerlog: %w", err)
	}
	defer f.Close()
	return ReplayFrom(f, ds)
}

// maxLineBytes bounds how much of a single log line recovery buffers. No
// valid answer comes close; a longer line is corruption and is skipped
// like any other malformed line.
const maxLineBytes = 1 << 20

// ReplayFrom is Replay over any reader (exposed for tests and piping).
func ReplayFrom(r io.Reader, ds *data.Dataset) (ReplayResult, error) {
	var res ReplayResult
	type key struct{ worker, object string }
	seen := make(map[key]bool, len(ds.Answers))
	for _, a := range ds.Answers {
		seen[key{a.Worker, a.Object}] = true
	}
	br := bufio.NewReaderSize(r, 64*1024)
	scratch := make([]byte, 0, 64*1024)
	for {
		line, tooLong, err := scanLine(br, scratch[:0])
		scratch = line
		if tooLong {
			// One over-long (corrupt) line must not strand the rest of the
			// campaign's answers behind a failed recovery.
			res.Skipped++
		} else if len(line) > 0 {
			var a data.Answer
			if jerr := json.Unmarshal(line, &a); jerr != nil || a.Object == "" || a.Worker == "" || a.Value == "" {
				res.Skipped++
			} else if k := (key{a.Worker, a.Object}); seen[k] {
				res.Duplicates++
			} else {
				seen[k] = true
				ds.Answers = append(ds.Answers, a)
				res.Answers++
			}
		}
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, fmt.Errorf("answerlog: scan: %w", err)
		}
	}
}

// scanLine reads the next line into buf (reused across calls) without the
// trailing newline. A line longer than maxLineBytes is consumed to its
// terminator and reported with tooLong=true and an empty buf, so callers
// can skip-and-count it instead of aborting the whole replay (a plain
// bufio.Scanner fails the scan with ErrTooLong). The final unterminated
// line, if any, is returned together with io.EOF.
func scanLine(br *bufio.Reader, buf []byte) (line []byte, tooLong bool, err error) {
	for {
		chunk, err := br.ReadSlice('\n')
		if !tooLong {
			buf = append(buf, chunk...)
			if len(buf) > maxLineBytes {
				tooLong = true
				buf = buf[:0]
			}
		}
		switch err {
		case bufio.ErrBufferFull:
			continue // line spans internal buffers; keep accumulating
		case nil:
			if n := len(buf); n > 0 && buf[n-1] == '\n' {
				buf = buf[:n-1]
			}
			return buf, tooLong, nil
		default:
			return buf, tooLong, err
		}
	}
}
