package answerlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "answers.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	answers := []data.Answer{
		{Object: "o1", Worker: "w1", Value: "v1"},
		{Object: "o2", Worker: "w2", Value: "v2"},
		{Object: "o1", Worker: "w3", Value: "v1"},
	}
	for _, a := range answers {
		if err := l.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 3 {
		t.Fatalf("count = %d", l.Count())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := Replay(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 3 || res.Skipped != 0 {
		t.Fatalf("replay = %+v", res)
	}
	for i, a := range answers {
		if ds.Answers[i] != a {
			t.Fatalf("answer %d mismatch", i)
		}
	}
}

func TestAppendValidatesAndClosedFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(data.Answer{Object: "", Worker: "w", Value: "v"}); err == nil {
		t.Fatal("empty field must fail")
	}
	l.Close()
	if err := l.Append(data.Answer{Object: "o", Worker: "w", Value: "v"}); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestReplayMissingFileIsEmptyCampaign(t *testing.T) {
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := Replay(filepath.Join(t.TempDir(), "nope.jsonl"), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 0 || len(ds.Answers) != 0 {
		t.Fatal("missing log must mean empty campaign")
	}
}

func TestReplayTornWrite(t *testing.T) {
	// A crash mid-append leaves a torn last line; recovery must keep the
	// intact prefix and skip the torn tail.
	raw := `{"object":"o1","worker":"w1","value":"v1"}
{"object":"o2","worker":"w2","value":"v2"}
{"object":"o3","wor`
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := ReplayFrom(strings.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 2 || res.Skipped != 1 {
		t.Fatalf("replay = %+v", res)
	}
}

func TestReplaySkipsGarbageAndEmptyLines(t *testing.T) {
	raw := "\n\nnot json\n{\"object\":\"o\",\"worker\":\"w\",\"value\":\"v\"}\n{\"object\":\"\",\"worker\":\"w\",\"value\":\"v\"}\n"
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := ReplayFrom(strings.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 1 || res.Skipped != 2 {
		t.Fatalf("replay = %+v", res)
	}
}

func TestReplaySkipsOverlongLines(t *testing.T) {
	// A corrupt line longer than the 1 MiB line cap used to abort the whole
	// recovery with bufio.ErrTooLong, stranding every answer in the log; it
	// must be skipped and counted like any other malformed line.
	var sb strings.Builder
	sb.WriteString(`{"object":"o1","worker":"w1","value":"v1"}` + "\n")
	sb.WriteString(`{"object":"huge","worker":"w9","value":"`)
	sb.WriteString(strings.Repeat("x", 2<<20))
	sb.WriteString("\"}\n")
	sb.WriteString(`{"object":"o2","worker":"w2","value":"v2"}` + "\n")
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := ReplayFrom(strings.NewReader(sb.String()), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 2 || res.Skipped != 1 || res.Duplicates != 0 {
		t.Fatalf("replay = %+v", res)
	}
	if len(ds.Answers) != 2 || ds.Answers[0].Object != "o1" || ds.Answers[1].Object != "o2" {
		t.Fatalf("dataset answers = %+v", ds.Answers)
	}
}

func TestReplaySkipsOverlongFinalLineWithoutNewline(t *testing.T) {
	// Torn over-long tail: over the cap AND unterminated.
	raw := `{"object":"o1","worker":"w1","value":"v1"}` + "\n" +
		`{"object":"t","worker":"w","value":"` + strings.Repeat("y", 2<<20)
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := ReplayFrom(strings.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != 1 || res.Skipped != 1 {
		t.Fatalf("replay = %+v", res)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = l.Append(data.Answer{Object: "o", Worker: "w", Value: "v"})
		}(i)
	}
	wg.Wait()
	l.Close()
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := Replay(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers+res.Duplicates != 20 || res.Skipped != 0 {
		t.Fatalf("replay = %+v (interleaved writes corrupted the log)", res)
	}
	if res.Answers != 1 || res.Duplicates != 19 {
		t.Fatalf("identical (worker, object) answers must dedupe: %+v", res)
	}
}

func TestGroupCommitAllDurableAndWellFormed(t *testing.T) {
	// Many concurrent appenders share group commits; every acknowledged
	// answer must be on disk as its own well-formed line once Append
	// returns, and Count must reflect exactly the committed batch sizes.
	path := filepath.Join(t.TempDir(), "g.jsonl")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(data.Answer{Object: fmt.Sprintf("o%02d", i), Worker: fmt.Sprintf("w%02d", i), Value: "v"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if l.Count() != n {
		t.Fatalf("count = %d, want %d", l.Count(), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ds := &data.Dataset{Name: "x", Truth: map[string]string{}}
	res, err := Replay(path, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answers != n || res.Skipped != 0 || res.Duplicates != 0 {
		t.Fatalf("replay = %+v, want %d clean answers", res, n)
	}
}

func TestReplayDedupesAgainstDatasetAndWithinLog(t *testing.T) {
	raw := `{"object":"o1","worker":"w1","value":"v1"}
{"object":"o1","worker":"w1","value":"v2"}
{"object":"o2","worker":"w1","value":"v1"}
`
	ds := &data.Dataset{
		Name:    "x",
		Truth:   map[string]string{},
		Answers: []data.Answer{{Object: "o2", Worker: "w1", Value: "v9"}},
	}
	res, err := ReplayFrom(strings.NewReader(raw), ds)
	if err != nil {
		t.Fatal(err)
	}
	// o1/w1 appears twice in the log (second dropped); o2/w1 is already in
	// the dataset (dropped).
	if res.Answers != 1 || res.Duplicates != 2 || res.Skipped != 0 {
		t.Fatalf("replay = %+v", res)
	}
	if len(ds.Answers) != 2 {
		t.Fatalf("dataset answers = %+v", ds.Answers)
	}
}

func TestReopenAppendsToExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	l1, _ := Open(path)
	_ = l1.Append(data.Answer{Object: "o1", Worker: "w", Value: "v"})
	l1.Close()
	l2, _ := Open(path)
	_ = l2.Append(data.Answer{Object: "o2", Worker: "w", Value: "v"})
	l2.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(raw), "\n") != 2 {
		t.Fatalf("log should have 2 lines:\n%s", raw)
	}
}
