// Package repro_bench holds the top-level benchmark harness: one benchmark
// per table and figure of the paper (regenerating the reported rows at a
// reduced scale) plus micro-benchmarks for the hot paths (EM iteration,
// incremental EM, EAI assignment with and without the UEAI pruning bound).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The full paper-scale experiments are driven by cmd/bench instead, where
// wall-clock budgets are not constrained by the benchmark framework.
package repro_bench

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/assign"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/engine"
	"repro/internal/eventlog"
	"repro/internal/experiments"
	"repro/internal/infer"
	"repro/internal/server"
	"repro/internal/synth"
)

// benchCfg is the reduced-scale configuration used by the per-experiment
// benchmarks: large enough to exercise every code path, small enough for
// -bench runs.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.05, Rounds: 4, Seed: 7, EvalEvery: 2}
}

// --- One benchmark per table / figure -----------------------------------

func BenchmarkFig1SourceTendencies(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig1(cfg)
	}
}

func BenchmarkTable3TruthInference(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table3(cfg)
	}
}

func BenchmarkFig5SourceReliability(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(cfg)
	}
}

func BenchmarkFig6TaskAssignmentCurves(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(cfg)
	}
}

func BenchmarkFig7ImprovementEstimates(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg)
	}
}

func BenchmarkTable4AllCombos(b *testing.B) {
	cfg := benchCfg()
	cfg.Rounds = 2
	for i := 0; i < b.N; i++ {
		experiments.Table4(cfg)
	}
}

func BenchmarkFig8to10HeadlineCurves(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig8to10(cfg)
	}
}

func BenchmarkFig11WorkerQualitySweep(b *testing.B) {
	cfg := benchCfg()
	cfg.Rounds = 2
	for i := 0; i < b.N; i++ {
		experiments.Fig11(cfg)
	}
}

func BenchmarkFig12ExecutionTimes(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig12(cfg)
	}
}

func BenchmarkFig13PruningScalability(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig13(cfg)
	}
}

func BenchmarkFig14to16HumanAnnotators(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig14to16(cfg)
	}
}

func BenchmarkFig17AMT(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Fig17(cfg)
	}
}

func BenchmarkTable5MultiTruth(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table5(cfg)
	}
}

func BenchmarkTable6Numeric(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		experiments.Table6(cfg)
	}
}

// --- Micro-benchmarks: inference ----------------------------------------

func birthPlacesIndex(scale float64) *data.Index {
	ds := synth.BirthPlaces(synth.BirthPlacesConfig{Seed: 7, Scale: scale})
	return data.NewIndex(ds)
}

func heritagesIndex(scale float64) *data.Index {
	ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: scale})
	return data.NewIndex(ds)
}

func BenchmarkTDHInferBirthPlaces(b *testing.B) {
	idx := birthPlacesIndex(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(idx, core.DefaultOptions())
	}
}

func BenchmarkTDHInferHeritages(b *testing.B) {
	idx := heritagesIndex(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(idx, core.DefaultOptions())
	}
}

// BenchmarkInferencers times every Table 3 algorithm on the same workload —
// the microscopic version of Figure 12's left panel.
func BenchmarkInferencers(b *testing.B) {
	idx := birthPlacesIndex(0.05)
	for _, alg := range experiments.InferencersInPaperOrder() {
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Infer(idx)
			}
		})
	}
}

// --- Micro-benchmarks: task assignment ----------------------------------

func assignmentContext(b *testing.B, scale float64) *assign.Context {
	b.Helper()
	idx := heritagesIndex(scale)
	res := infer.NewTDH().Infer(idx)
	workers := synth.NewWorkerPool(synth.WorkerPoolConfig{Seed: 7, Count: 10, Pi: 0.75})
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = w.Name
	}
	return &assign.Context{Idx: idx, Res: res, Workers: names, K: 5, Seed: 7}
}

func BenchmarkEAIAssignWithPruning(b *testing.B) {
	ctx := assignmentContext(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.EAI{}.Assign(ctx)
	}
}

func BenchmarkEAIAssignNoPruning(b *testing.B) {
	ctx := assignmentContext(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.EAI{DisablePruning: true}.Assign(ctx)
	}
}

func BenchmarkQASCAAssign(b *testing.B) {
	ctx := assignmentContext(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.QASCA{}.Assign(ctx)
	}
}

func BenchmarkMEAssign(b *testing.B) {
	ctx := assignmentContext(b, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign.ME{}.Assign(ctx)
	}
}

// BenchmarkIncrementalEM times the single-answer conditional-confidence
// update (Eq. 18) — the inner loop of EAI.
func BenchmarkIncrementalEM(b *testing.B) {
	idx := heritagesIndex(0.25)
	m := core.Run(idx, core.DefaultOptions())
	psi := m.DefaultPsi()
	objs := idx.Objects
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		m.CondMaxConfidence(o, psi, 0)
	}
}

// BenchmarkDatasetGeneration times the synthetic substrates.
func BenchmarkDatasetGeneration(b *testing.B) {
	b.Run("BirthPlaces", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth.BirthPlaces(synth.BirthPlacesConfig{Seed: int64(i), Scale: 0.1})
		}
	})
	b.Run("Heritages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth.Heritages(synth.HeritagesConfig{Seed: int64(i), Scale: 0.1})
		}
	})
	b.Run("Stock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synth.Stock(synth.StockConfig{Seed: int64(i), Symbols: 100})
		}
	})
}

// BenchmarkIndexBuild times the candidate-set index construction.
func BenchmarkIndexBuild(b *testing.B) {
	ds := synth.BirthPlaces(synth.BirthPlacesConfig{Seed: 7, Scale: 0.25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.NewIndex(ds)
	}
}

// BenchmarkTaskThroughput measures cold-worker /task serving: every request
// arrives from a worker with no pending assignment, so each one runs the
// full EAI assignment path against the published snapshot. With the
// snapshot-resident plan this is a bounded scan over precomputed UEAI
// bounds; without it (pre-planner) every request rebuilt an O(|O|) bound
// map plus an O(|O| log |O|) heap.
func BenchmarkTaskThroughput(b *testing.B) {
	ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.25})
	srv, err := server.New(server.Config{
		Dataset:    ds,
		Inferencer: infer.NewTDH(),
		Assigner:   assign.EAI{},
		K:          5,
		Seed:       7,
		// No answers arrive, so no refits: every request hits one snapshot.
		Policy: server.RefitPolicy{MaxAnswers: -1, MaxStaleness: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", fmt.Sprintf("/task?worker=cold-%d", i), nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("task %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "tasks/sec")
	}
}

// BenchmarkServerThroughput measures the crowd server's ingest rate
// (answers/sec, the per-iteration metric) while concurrent readers hammer
// the snapshot-served read endpoints. Because reads take no lock shared
// with inference, the reported reads/sec stays high even though the
// pipeline keeps triggering full refits in the background — the
// acceptance check for the async snapshot architecture.
func BenchmarkServerThroughput(b *testing.B) {
	ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.1})
	srv, err := server.New(server.Config{
		Dataset:     ds,
		Inferencer:  infer.NewTDH(),
		Assigner:    assign.EAI{},
		OpenAnswers: true, // benchmark workers answer arbitrary objects
		Policy:      server.RefitPolicy{MaxAnswers: 256, MaxStaleness: 50 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	snap := srv.Snapshot()
	objs := srv.SortedObjects()
	vals := make([]string, len(objs))
	for i, o := range objs {
		vals[i] = snap.Idx.View(o).CI.Values[0]
	}

	// Background readers: count snapshot reads completed during the write
	// loop to show reads are never blocked behind a refit.
	var reads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", "/truths", nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
				reads.Add(1)
			}
		}()
	}

	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"value":%q}`,
			i, o, vals[i%len(objs)])
		req := httptest.NewRequest("POST", "/answer", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("answer %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if secs := elapsed.Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "answers/sec")
		b.ReportMetric(float64(reads.Load())/secs, "reads/sec")
	}
}

// BenchmarkNumericIngest measures a numeric campaign's answer ingest rate:
// workers submit typed {"num": ...} payloads, every accepted batch re-runs
// the CRH estimator over sources + worker pseudo-sources (numeric engines
// have no incremental path by design — re-estimation IS the fold), and
// reads keep serving the published estimates. The per-iteration answers/sec
// is the numeric-truth-model counterpart of BenchmarkServerThroughput.
func BenchmarkNumericIngest(b *testing.B) {
	attr := synth.Stock(synth.StockConfig{Seed: 7, Symbols: 300})[0]
	ds := &data.Dataset{Name: "stock-" + attr.Name, Records: attr.Records, Truth: map[string]string{}}
	for o, v := range attr.Gold {
		ds.Truth[o] = fmt.Sprintf("%g", v)
	}
	eng, err := engine.New(engine.Numeric, "CRH", engine.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Dataset:     ds,
		Engine:      eng,
		Assigner:    assign.ME{},
		OpenAnswers: true, // benchmark workers answer arbitrary objects
		Policy:      server.RefitPolicy{MaxAnswers: 256, MaxStaleness: 50 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	objs := srv.SortedObjects()
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := objs[i%len(objs)]
		body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"num":%g}`,
			i, o, attr.Gold[o]*(1+0.01*float64(i%7)))
		req := httptest.NewRequest("POST", "/answer", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("answer %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	b.StopTimer()
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "answers/sec")
	}
}

// BenchmarkLiveGrowth measures open-world ingest: durable answer
// throughput while the campaign's dataset keeps growing. The "closed"
// variant is the baseline (answers only); the "growing" variant interleaves
// one POST /objects + POST /records pair every 32 answers, so each sample
// pays for the event-log commit AND the pipeline folding mutations into
// fresh snapshots via Index.Extend + Model.Grow. The delta between the two
// is the price of living in an open world.
func BenchmarkLiveGrowth(b *testing.B) {
	for _, grow := range []struct {
		name  string
		every int // one object+record pair per this many operations; 0 = never
	}{{"closed", 0}, {"growing", 32}} {
		b.Run(grow.name, func(b *testing.B) {
			log, err := eventlog.Open(filepath.Join(b.TempDir(), "events.jsonl"))
			if err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.1})
			srv, err := server.New(server.Config{
				Dataset:     ds,
				Inferencer:  infer.NewTDH(),
				Assigner:    assign.EAI{},
				OpenAnswers: true,
				Log:         log,
				Mutations:   log,
				Policy:      server.RefitPolicy{MaxAnswers: 256, MaxStaleness: 50 * time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			h := srv.Handler()
			snap := srv.Snapshot()
			objs := srv.SortedObjects()
			vals := make([]string, len(objs))
			for i, o := range objs {
				vals[i] = snap.Idx.View(o).CI.Values[0]
			}
			hnodes := ds.H.Nodes()

			var seq, added atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.SetParallelism(16)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					if grow.every > 0 && i%grow.every == 0 {
						o := fmt.Sprintf("grown-%d", i)
						body := fmt.Sprintf(`{"object":%q,"candidates":[%q,%q]}`,
							o, hnodes[i%len(hnodes)], hnodes[(i+1)%len(hnodes)])
						req := httptest.NewRequest("POST", "/objects", strings.NewReader(body))
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						if rec.Code != 200 {
							b.Fatalf("add object %d: %d: %s", i, rec.Code, rec.Body.String())
						}
						body = fmt.Sprintf(`{"object":%q,"source":"stream-src","value":%q}`,
							o, hnodes[i%len(hnodes)])
						req = httptest.NewRequest("POST", "/records", strings.NewReader(body))
						rec = httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						if rec.Code != 200 {
							b.Fatalf("add record %d: %d: %s", i, rec.Code, rec.Body.String())
						}
						added.Add(1)
						continue
					}
					oi := i % len(objs)
					body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"value":%q}`, i, objs[oi], vals[oi])
					req := httptest.NewRequest("POST", "/answer", strings.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != 200 {
						b.Fatalf("answer %d: %d: %s", i, rec.Code, rec.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "ops/sec")
				b.ReportMetric(float64(added.Load())/secs, "objects/sec")
			}
		})
	}
}

// BenchmarkShardedIngest measures the ingest pipeline's incremental path —
// POST /answer through the epoch fold to an epoch-stitched publish with the
// assignment plan advanced in the pipeline goroutine — at 1 vs N ingest
// shards. Refits are disabled so every accepted answer pays exactly the
// sharded critical path under test: route to shard, fold concurrently,
// stitch, advance + prewarm the plan. On a multi-core box the N-shard
// variant folds batches in parallel; on one core it must stay within noise
// of the single-shard pipeline (the sharding overhead is one FNV hash and a
// channel hop per answer).
func BenchmarkShardedIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.1})
			srv, err := server.New(server.Config{
				Dataset:     ds,
				Inferencer:  infer.NewTDH(),
				Assigner:    assign.EAI{},
				OpenAnswers: true, // benchmark workers answer arbitrary objects
				Policy: server.RefitPolicy{
					MaxAnswers: -1, MaxStaleness: -1, Shards: shards,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			h := srv.Handler()
			snap := srv.Snapshot()
			objs := srv.SortedObjects()
			vals := make([]string, len(objs))
			for i, o := range objs {
				vals[i] = snap.Idx.View(o).CI.Values[0]
			}
			var seq atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.SetParallelism(16)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					oi := i % len(objs)
					body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"value":%q}`, i, objs[oi], vals[oi])
					req := httptest.NewRequest("POST", "/answer", strings.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != 200 {
						b.Fatalf("answer %d: status %d: %s", i, rec.Code, rec.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "answers/sec")
			}
		})
	}
}

// BenchmarkTracedIngest is the lineage-tentpole overhead pin: the same
// incremental-path ingest workload as BenchmarkShardedIngest, interleaved
// A/B between tracing disabled and the default probabilistic sampling
// (1-in-64 requests carry a full span tree; watermarks and sequence numbers
// are maintained in both). The acceptance bound is ≤2% answers/sec
// regression for the "default" variant — the unsampled hot path pays one
// traceparent parse, one nil recorder check and a per-shard seq increment.
func BenchmarkTracedIngest(b *testing.B) {
	for _, mode := range []struct {
		name   string
		sample int // Config.TraceSampleEvery: <0 never, 0 default 1-in-64
	}{{"off", -1}, {"default", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.1})
			srv, err := server.New(server.Config{
				Dataset:     ds,
				Inferencer:  infer.NewTDH(),
				Assigner:    assign.EAI{},
				OpenAnswers: true, // benchmark workers answer arbitrary objects
				Policy: server.RefitPolicy{
					MaxAnswers: -1, MaxStaleness: -1,
				},
				TraceSampleEvery: mode.sample,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			h := srv.Handler()
			snap := srv.Snapshot()
			objs := srv.SortedObjects()
			vals := make([]string, len(objs))
			for i, o := range objs {
				vals[i] = snap.Idx.View(o).CI.Values[0]
			}
			var seq atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.SetParallelism(16)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(seq.Add(1))
					oi := i % len(objs)
					body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"value":%q}`, i, objs[oi], vals[oi])
					req := httptest.NewRequest("POST", "/answer", strings.NewReader(body))
					req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != 200 {
						b.Fatalf("answer %d: status %d: %s", i, rec.Code, rec.Body.String())
					}
				}
			})
			b.StopTimer()
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "answers/sec")
			}
		})
	}
}

// BenchmarkPlanAdvance compares the two ways a publish can obtain its
// assignment plan after an incremental fold touching a small object set:
// building from scratch (NewPlan + Prewarm — O(Σ|Vo| + |O| log |O|) plus
// |O| cold-worker EAI evaluations) versus advancing the previous snapshot's
// plan around the touched objects (copy + O(batch) patches + merge-repair).
// The dataset is BirthPlaces at ≥10k objects — the regime where the
// per-publish NewPlan was the wall between publish rate and corpus size.
func BenchmarkPlanAdvance(b *testing.B) {
	ds := synth.BirthPlaces(synth.BirthPlacesConfig{Seed: 7, Scale: 2})
	idx := data.NewIndex(ds)
	// Plan construction cost does not depend on fit quality; a capped fit
	// keeps the benchmark setup seconds, not minutes.
	opts := core.DefaultOptions()
	opts.MaxIter = 3
	m := core.Run(idx, opts)
	res := infer.ResultFromModel(m)
	b.Logf("objects: %d", idx.NumObjects())

	// One incremental publish: 64 answers spread over 16 objects.
	m2 := m.Clone()
	var touched []int
	for i := 0; i < 64; i++ {
		oid := (i * 131) % 16
		o := idx.Objects[oid]
		m2.ApplyAnswer(o, fmt.Sprintf("bw-%d", i%8), 0)
		touched = append(touched, oid)
	}
	res2 := infer.ResultFromModel(m2)

	prev := assign.NewPlan(idx, res)
	prev.Prewarm()
	b.Run("NewPlan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := assign.NewPlan(idx, res2)
			p.Prewarm()
		}
	})
	b.Run("Advance", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, ok := prev.Advance(idx, res2, touched)
			if !ok {
				b.Fatal("Advance fell back to a full build")
			}
			p.Prewarm()
		}
	})
}

// BenchmarkCampaignIngest measures durable multi-campaign answer ingest:
// four concurrent campaigns hosted by one manager under a shared data
// directory, every accepted answer fsync'd to its campaign's answer log
// before the 200 acknowledgment. With per-answer fsync the disk's sync
// rate caps the whole process; the answer log's group commit batches
// concurrent appends into one fsync per campaign, so the reported
// answers/sec is the multi-tenant ingest ceiling.
func BenchmarkCampaignIngest(b *testing.B) {
	mgr, err := campaign.Open(b.TempDir(), campaign.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	const nCampaigns = 4
	ids := make([]string, nCampaigns)
	objs := make([][]string, nCampaigns)
	vals := make([][]string, nCampaigns)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%d", i)
		ds := synth.Heritages(synth.HeritagesConfig{Seed: int64(7 + i), Scale: 0.1})
		if _, err := mgr.Create(campaign.Spec{
			ID:          ids[i],
			OpenAnswers: true, // benchmark workers answer arbitrary objects
			Policy:      campaign.PolicySpec{RefitAnswers: 256, RefitStalenessMS: 50},
		}, ds); err != nil {
			b.Fatal(err)
		}
		if err := mgr.Start(ids[i]); err != nil {
			b.Fatal(err)
		}
		c, _ := mgr.Get(ids[i])
		snap := c.Server().Snapshot()
		objs[i] = c.Server().SortedObjects()
		vals[i] = make([]string, len(objs[i]))
		for j, o := range objs[i] {
			vals[i][j] = snap.Idx.View(o).CI.Values[0]
		}
	}
	h := mgr.Handler()
	var seq atomic.Int64
	start := time.Now()
	b.ResetTimer()
	// Workers are blocked on the durable ack (fsync), not on a core: model
	// many concurrent connections even on small GOMAXPROCS.
	b.SetParallelism(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			ci := i % nCampaigns
			oi := (i / nCampaigns) % len(objs[ci])
			body := fmt.Sprintf(`{"worker":"bw-%d","object":%q,"value":%q}`,
				i, objs[ci][oi], vals[ci][oi])
			req := httptest.NewRequest("POST", "/v1/campaigns/"+ids[ci]+"/answer", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("answer %d: status %d: %s", i, rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "answers/sec")
	}
	if err := mgr.Close(); err != nil {
		b.Fatal(err)
	}
}
