// Crowdloop: the full crowdsourced truth-discovery pipeline of Figure 2 —
// alternate TDH inference and EAI task assignment over simulated crowd
// workers, and watch accuracy climb as answers accumulate. Also runs the
// uncertainty-sampling baseline (ME) for contrast.
package main

import (
	"fmt"

	"repro/internal/assign"
	"repro/internal/crowd"
	"repro/internal/infer"
	"repro/internal/synth"
)

func main() {
	ds := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.25})
	fmt.Printf("dataset %s: %d records, %d objects, %d sources\n\n",
		ds.Name, len(ds.Records), len(ds.Objects()), len(ds.Sources()))

	workers := synth.NewWorkerPool(synth.WorkerPoolConfig{Seed: 7, Count: 10, Pi: 0.75})
	cfg := crowd.Config{Rounds: 20, K: 2, Seed: 7, Workers: workers, EvalEvery: 5}

	traces := []*crowd.Trace{
		crowd.RunLoop(ds, infer.NewTDH(), assign.EAI{}, cfg),
		crowd.RunLoop(ds, infer.NewTDH(), assign.ME{}, cfg),
	}
	fmt.Printf("%-10s", "round")
	for _, tr := range traces {
		fmt.Printf(" %14s", tr.Inference+"+"+tr.Assignment)
	}
	fmt.Println()
	for i, st := range traces[0].Rounds {
		if st.Scores.N == 0 {
			continue
		}
		fmt.Printf("%-10d", st.Round)
		for _, tr := range traces {
			fmt.Printf(" %14.4f", tr.Rounds[i].Scores.Accuracy)
		}
		fmt.Println()
	}
	fmt.Printf("\nanswers collected per run: %d\n", traces[0].Rounds[len(traces[0].Rounds)-1].Answers)
	fmt.Println("EAI reaches any target accuracy in fewer rounds than ME — the cost saving of Section 5.3.")
}
