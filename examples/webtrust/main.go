// Webtrust: the web-source trustworthiness application from the paper's
// introduction — run hierarchical truth discovery over a crawl, then rank
// the sources by their estimated reliability and inspect each source's
// generalization tendency (does it claim 'USA' when the truth is 'LA'?).
// Identified wrong values point at systematic extraction errors, the data
// cleaning use case of knowledge fusion.
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/synth"
)

func main() {
	ds := synth.Heritages(synth.HeritagesConfig{Seed: 11, Scale: 0.25})
	idx := data.NewIndex(ds)
	m := core.Run(idx, core.DefaultOptions())
	truths := m.Truths()

	// Rank sources with at least 5 claims by estimated exact reliability.
	type srcRow struct {
		name   string
		claims int
		phi    [3]float64
	}
	var rows []srcRow
	for _, s := range idx.SourceNames {
		n := len(idx.ObjectsOfSource(s))
		if n >= 5 {
			rows = append(rows, srcRow{s, n, m.PhiOf(s)})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].phi[0] > rows[j].phi[0] })
	fmt.Println("most trustworthy sources (>=5 claims), by estimated P(exact):")
	for i, r := range rows {
		if i == 10 {
			break
		}
		fmt.Printf("  %-10s claims=%3d exact=%.3f generalized=%.3f wrong=%.3f\n",
			r.name, r.claims, r.phi[0], r.phi[1], r.phi[2])
	}

	// Data cleaning: surface the claims TDH believes are wrong for the
	// least reliable source in the ranking.
	if len(rows) > 0 {
		worst := rows[len(rows)-1]
		fmt.Printf("\nsuspected extraction errors of %s:\n", worst.name)
		shown := 0
		for _, o := range idx.ObjectsOfSource(worst.name) {
			ov := idx.View(o)
			ci, _ := ov.SourceClaim(worst.name)
			claimed := ov.CI.Values[ci]
			if claimed != truths[o] && (ds.H == nil || !ds.H.IsAncestor(claimed, truths[o])) {
				fmt.Printf("  %-12s claimed %-22s inferred %s\n", o, claimed, truths[o])
				shown++
				if shown == 5 {
					break
				}
			}
		}
	}

	sc := eval.Evaluate(ds, idx, truths)
	fmt.Printf("\noverall: Accuracy=%.4f GenAccuracy=%.4f AvgDistance=%.4f over %d objects\n",
		sc.Accuracy, sc.GenAccuracy, sc.AvgDistance, sc.N)
}
