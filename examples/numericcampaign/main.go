// Numericcampaign: run a NUMERIC truth-model campaign end-to-end over the
// v1 API. The campaign is created with "truth_model": "numeric", so the
// engine behind it is a numeric estimator (CRH here) instead of TDH:
// workers submit typed {"num": ...} payloads (any finite number — numeric
// truths live on the real line, not in a candidate set), /truths serves
// map[object]float64 estimates, and /stats reports MAE / relative error
// against the gold standard. Worker answers join the estimation as
// pseudo-sources, so an honest crowd pulls the estimate toward the truth
// even when a biased source pulls away from it. The finale restarts the
// manager to show the typed answers replaying from the durable event log.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"

	"repro/internal/campaign"
	"repro/internal/data"
	"repro/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "numericcampaign-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	api := httptest.NewServer(mgr.Handler())
	defer api.Close()

	// Seed dataset: one stock attribute — sources report each symbol's
	// value at different precisions and biases, gold is the true number.
	attr := synth.Stock(synth.StockConfig{Seed: 7, Symbols: 60, Sources: 12})[0]
	ds := &data.Dataset{Name: "stock-" + attr.Name, Truth: map[string]string{}}
	ds.Records = attr.Records
	for o, v := range attr.Gold {
		ds.Truth[o] = fmt.Sprintf("%g", v)
	}

	var wire bytes.Buffer
	if err := data.Write(&wire, ds); err != nil {
		fatal(err)
	}
	req := campaign.CreateRequest{
		Spec: campaign.Spec{
			ID:          "spot-price",
			Name:        "Stock " + attr.Name,
			TruthModel:  "numeric", // engine: CRH over sources + worker pseudo-sources
			Inferencer:  "CRH",
			Assigner:    "ME",
			OpenAnswers: true,
		},
		State:   campaign.StateLive,
		Dataset: wire.Bytes(),
	}
	body, _ := json.Marshal(&req)
	resp, err := http.Post(api.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		fatal(fmt.Errorf("create: %s: %s", resp.Status, msg))
	}
	resp.Body.Close()
	fmt.Printf("created numeric campaign over %d objects, %d source records\n",
		len(ds.Objects()), len(ds.Records))
	printStats(api.URL, "sources only")

	// A crowd of workers reads every symbol with small unbiased noise and
	// submits typed numeric payloads concurrently.
	objects := ds.Objects()
	sort.Strings(objects)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for _, o := range objects {
				reading := attr.Gold[o] * (1 + 0.01*rng.NormFloat64())
				body := fmt.Sprintf(`{"worker":"crowd-%02d","object":%q,"num":%g}`, w, o, reading)
				resp, err := http.Post(api.URL+"/v1/campaigns/spot-price/answer",
					"application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	post(api.URL + "/v1/campaigns/spot-price/refresh")
	printStats(api.URL, "after crowd answers")

	// /truths for a numeric campaign is map[object]float64.
	var est map[string]float64
	getJSON(api.URL+"/v1/campaigns/spot-price/truths", &est)
	o := objects[0]
	fmt.Printf("\nsample estimate: %s = %.4f (gold %.4f)\n", o, est[o], attr.Gold[o])

	// Restart: the typed numeric answers replay from the event log.
	if err := mgr.Close(); err != nil {
		fatal(err)
	}
	mgr2, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	defer mgr2.Close()
	for _, c := range mgr2.Campaigns() {
		rec := c.Recovered()
		fmt.Printf("\nafter restart: campaign %s (%s) replayed %d numeric answers (skipped=%d, duplicates=%d)\n",
			c.ID(), c.Meta().TruthModel, rec.Answers, rec.Skipped, rec.Duplicates)
	}
}

func printStats(base, phase string) {
	var st struct {
		Answers int                `json:"answers"`
		Quality map[string]float64 `json:"quality"`
	}
	getJSON(base+"/v1/campaigns/spot-price/stats", &st)
	fmt.Printf("%-20s answers=%-4d MAE=%.4f relative-error=%.4f\n",
		phase+":", st.Answers, st.Quality["mae"], st.Quality["re"])
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatal(err)
	}
}

func post(url string) {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "numericcampaign:", err)
	os.Exit(1)
}
