// Multiattr: joint truth discovery over several attributes (the
// generalization Section 2.1 of the paper mentions). Two attributes —
// birthplace and deathplace — share the same sources; fusing them lets
// evidence about a source's reliability on one attribute sharpen the truth
// estimates on the other.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hierarchy"
)

func buildTree(prefix string) *hierarchy.Tree {
	h := hierarchy.New(hierarchy.Root)
	h.MustAdd(prefix+"USA", hierarchy.Root)
	h.MustAdd(prefix+"NY", prefix+"USA")
	h.MustAdd(prefix+"LA", prefix+"USA")
	h.MustAdd(prefix+"Brooklyn", prefix+"NY")
	h.Freeze()
	return h
}

func main() {
	// Source "solid" is accurate on both attributes; "shaky" is wrong a
	// lot. On the contested deathplace of "grace" the fused model should
	// side with "solid" because of its birthplace track record.
	birth := data.Attribute{
		Name: "birthplace",
		H:    buildTree("b/"),
		Records: []data.Record{
			{Object: "ada", Source: "solid", Value: "b/Brooklyn"},
			{Object: "ada", Source: "ref1", Value: "b/Brooklyn"},
			{Object: "ada", Source: "shaky", Value: "b/LA"},
			{Object: "bob", Source: "solid", Value: "b/NY"},
			{Object: "bob", Source: "ref2", Value: "b/NY"},
			{Object: "bob", Source: "shaky", Value: "b/LA"},
			{Object: "cyd", Source: "solid", Value: "b/LA"},
			{Object: "cyd", Source: "ref1", Value: "b/LA"},
			{Object: "cyd", Source: "shaky", Value: "b/NY"},
		},
		Truth: map[string]string{"ada": "b/Brooklyn", "bob": "b/NY", "cyd": "b/LA"},
	}
	death := data.Attribute{
		Name: "deathplace",
		H:    buildTree("d/"),
		Records: []data.Record{
			// The probe: a bare 1-1 conflict, undecidable by voting.
			{Object: "grace", Source: "solid", Value: "d/NY"},
			{Object: "grace", Source: "shaky", Value: "d/LA"},
		},
		Truth: map[string]string{"grace": "d/NY"},
	}

	fused, err := data.MergeAttributes("people", []data.Attribute{birth, death})
	if err != nil {
		panic(err)
	}
	idx := data.NewIndex(fused)
	m := core.Run(idx, core.DefaultOptions())
	byAttr := data.SplitTruths(m.Truths())

	fmt.Println("fused truths:")
	for attr, truths := range byAttr {
		for o, v := range truths {
			fmt.Printf("  %-10s %-6s -> %s\n", attr, o, v)
		}
	}
	fmt.Println("\nsource trustworthiness learned across both attributes:")
	for _, s := range idx.SourceNames {
		phi := m.PhiOf(s)
		fmt.Printf("  %-6s exact=%.3f generalized=%.3f wrong=%.3f\n", s, phi[0], phi[1], phi[2])
	}
	fmt.Println("\nthe deathplace probe (1 vs 1 claim) resolves toward the source")
	fmt.Println("with the better cross-attribute track record — the value of fusing.")
}
