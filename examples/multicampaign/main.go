// Multicampaign: host two concurrent truth-discovery campaigns in one
// process through the v1 API — the multi-tenant successor of the paper's
// single-campaign crowdsourcing system (Section 5.5). The program creates
// a BirthPlaces and a Heritages campaign over HTTP, drives simulated
// worker crowds against both in parallel, pauses one mid-flight (showing
// the 409 lifecycle gate while reads keep serving), then shuts the whole
// manager down and reopens it to demonstrate per-campaign crash recovery
// from the durable answer logs.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"slices"
	"sync"

	"repro/internal/campaign"
	"repro/internal/data"
	"repro/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "multicampaign-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	api := httptest.NewServer(mgr.Handler())
	defer api.Close()

	// Two campaigns, two workloads, one process.
	births := synth.BirthPlaces(synth.BirthPlacesConfig{Seed: 7, Scale: 0.1})
	herits := synth.Heritages(synth.HeritagesConfig{Seed: 7, Scale: 0.1})
	createCampaign(api.URL, "birthplaces", births)
	createCampaign(api.URL, "heritages", herits)

	// Simulated crowds answer both campaigns concurrently: each worker
	// pulls assigned tasks and answers correctly with probability 0.8.
	var wg sync.WaitGroup
	for _, c := range []struct {
		id string
		ds *data.Dataset
	}{{"birthplaces", births}, {"heritages", herits}} {
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(id string, ds *data.Dataset, w int) {
				defer wg.Done()
				runWorker(api.URL, id, ds, w)
			}(c.id, c.ds, w)
		}
	}
	wg.Wait()

	// Lifecycle: pause one campaign — ingestion 409s, reads keep serving.
	post(api.URL + "/v1/campaigns/birthplaces/pause")
	fmt.Printf("paused birthplaces: GET /task -> %d\n", getStatus(api.URL+"/v1/campaigns/birthplaces/task?worker=late"))
	fmt.Printf("paused birthplaces: GET /stats -> %d\n", getStatus(api.URL+"/v1/campaigns/birthplaces/stats"))
	post(api.URL + "/v1/campaigns/birthplaces/resume")

	for _, c := range mgr.Campaigns() {
		st := c.Server().Stats()
		fmt.Printf("campaign %-12s state=%-6s answers=%-4d accuracy=%.4f\n",
			c.ID(), c.State(), st.Answers, st.Accuracy)
	}

	// Crash recovery: shut everything down, reopen the same directory, and
	// every campaign comes back with its paid-for answers replayed.
	if err := mgr.Close(); err != nil {
		fatal(err)
	}
	mgr2, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	defer mgr2.Close()
	fmt.Println("\nafter restart:")
	for _, c := range mgr2.Campaigns() {
		rec := c.Recovered()
		fmt.Printf("campaign %-12s state=%-6s replayed=%d answers (skipped=%d, duplicates=%d)\n",
			c.ID(), c.State(), rec.Answers, rec.Skipped, rec.Duplicates)
	}
}

// createCampaign uploads ds as a live campaign via POST /v1/campaigns.
func createCampaign(base, id string, ds *data.Dataset) {
	var wire bytes.Buffer
	if err := data.Write(&wire, ds); err != nil {
		fatal(err)
	}
	req := campaign.CreateRequest{
		Spec:    campaign.Spec{ID: id, Name: ds.Name, K: 3, Seed: 7},
		State:   campaign.StateLive,
		Dataset: wire.Bytes(),
	}
	body, err := json.Marshal(&req)
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		fatal(fmt.Errorf("create %s: %s: %s", id, resp.Status, msg))
	}
	fmt.Printf("created campaign %s (%d records, %d objects)\n", id, len(ds.Records), len(ds.Objects()))
}

// runWorker pulls one round of assigned tasks for worker w and answers
// each: the gold value with probability 0.8, otherwise a random candidate.
func runWorker(base, id string, ds *data.Dataset, w int) {
	worker := fmt.Sprintf("%s-worker-%02d", id, w)
	rng := rand.New(rand.NewSource(int64(1000 + w)))
	var tasks struct {
		Tasks []struct {
			Object     string   `json:"object"`
			Candidates []string `json:"candidates"`
		} `json:"tasks"`
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%s/task?worker=%s", base, id, worker))
	if err != nil {
		fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&tasks)
	resp.Body.Close()
	if err != nil {
		fatal(err)
	}
	for _, t := range tasks.Tasks {
		value := ds.Truth[t.Object]
		if !slices.Contains(t.Candidates, value) || rng.Float64() > 0.8 {
			value = t.Candidates[rng.Intn(len(t.Candidates))]
		}
		body, _ := json.Marshal(data.Answer{Object: t.Object, Worker: worker, Value: value})
		resp, err := http.Post(fmt.Sprintf("%s/v1/campaigns/%s/answer", base, id),
			"application/json", bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func getStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func post(url string) {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("POST %s -> %s", url, resp.Status))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "multicampaign:", err)
	os.Exit(1)
}
