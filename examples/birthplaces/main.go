// Birthplaces: the paper's first motivating workload — conflicting
// celebrity birthplaces crawled from websites of varying reliability and
// generalization tendency. Generates the synthetic BirthPlaces dataset,
// runs every truth-inference algorithm of Table 3, and prints the three
// hierarchical quality measures for each.
package main

import (
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	ds := synth.BirthPlaces(synth.BirthPlacesConfig{Seed: 7, Scale: 0.25})
	fmt.Printf("dataset %s: %d records, %d objects, %d sources, hierarchy %d nodes (height %d)\n\n",
		ds.Name, len(ds.Records), len(ds.Objects()), len(ds.Sources()), ds.H.Len(), ds.H.Height())

	idx := data.NewIndex(ds)
	fmt.Printf("%-10s %9s %12s %12s\n", "algorithm", "Accuracy", "GenAccuracy", "AvgDistance")
	for _, alg := range experiments.InferencersInPaperOrder() {
		res := alg.Infer(idx)
		sc := eval.Evaluate(ds, idx, res.Truths)
		fmt.Printf("%-10s %9.4f %12.4f %12.4f\n", alg.Name(), sc.Accuracy, sc.GenAccuracy, sc.AvgDistance)
	}

	// The per-source picture of Figure 5: actual quality vs TDH estimates.
	fmt.Println("\nPer-source reliability (actual vs TDH estimate):")
	rep := experiments.Fig5(experiments.Config{Seed: 7, Scale: 0.25})
	rep.Print(os.Stdout)
}
