// Openworld: a live campaign whose dataset grows while workers answer —
// the open-world mode of the crowdsourcing system. The campaign starts
// with 3 objects; a feeder streams POST /objects (declared objects with
// seeded candidates) and POST /records (new source claims) until the
// corpus reaches 30 objects, while a simulated crowd concurrently pulls
// tasks and answers. Every acknowledged event — answer, object add, record
// add — is group-committed to the campaign's typed event log before the
// 200, so when the process is killed mid-flight (simulated below by
// abandoning the manager without a graceful close) the reopened campaign
// replays the log and resumes with zero acknowledged loss.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"

	"repro/internal/campaign"
	"repro/internal/data"
	"repro/internal/hierarchy"
)

const (
	campaignID   = "openworld"
	seedObjects  = 3
	finalObjects = 30
	nWorkers     = 8
)

func main() {
	dir, err := os.MkdirTemp("", "openworld-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	mgr, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	api := httptest.NewServer(mgr.Handler())

	// Create the campaign live with only the first 3 objects known.
	ds := seedDataset()
	createCampaign(api.URL, ds)
	fmt.Printf("campaign %s: live with %d objects\n", campaignID, seedObjects)

	// Feeder and crowd run concurrently: the corpus grows 3 -> 30 under
	// answer traffic. Each grown object is declared with seeded candidates
	// first, then claimed by a live source record.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := seedObjects; i < finalObjects; i++ {
			o := fmt.Sprintf("city-%02d", i)
			postJSON(api.URL+"/v1/campaigns/"+campaignID+"/objects", map[string]any{
				"object":     o,
				"candidates": []string{"NY", "LA", "London", "USA"},
			})
			postJSON(api.URL+"/v1/campaigns/"+campaignID+"/records",
				data.Record{Object: o, Source: "live-wire", Value: "NY"})
		}
	}()
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(api.URL, w)
		}(w)
	}
	wg.Wait()

	postJSON(api.URL+"/v1/campaigns/"+campaignID+"/refresh", nil)
	truths := getTruths(api.URL)
	fmt.Printf("before crash: %d objects with inferred truths\n", len(truths))

	// Kill -9: abandon the manager without Close. Acknowledged events are
	// already fsync'd in the event log; nothing else matters.
	api.Close()

	mgr2, err := campaign.Open(dir, campaign.Options{Workers: 1})
	if err != nil {
		fatal(err)
	}
	defer mgr2.Close()
	api2 := httptest.NewServer(mgr2.Handler())
	defer api2.Close()

	c, ok := mgr2.Get(campaignID)
	if !ok {
		fatal(fmt.Errorf("campaign lost after crash"))
	}
	rec := c.Recovered()
	fmt.Printf("after restart: replayed %d answers, %d objects, %d records (%d skipped, %d duplicates)\n",
		rec.Answers, rec.Objects, rec.Records, rec.Skipped, rec.Duplicates)
	if rec.Objects != finalObjects-seedObjects {
		fatal(fmt.Errorf("expected %d replayed objects, got %d", finalObjects-seedObjects, rec.Objects))
	}

	truths = getTruths(api2.URL)
	if len(truths) != finalObjects {
		fatal(fmt.Errorf("restarted campaign covers %d objects, want %d", len(truths), finalObjects))
	}
	fmt.Printf("after restart: %d objects with inferred truths — zero acknowledged loss\n", len(truths))
	fmt.Printf("city-%02d -> %s\n", finalObjects-1, truths[fmt.Sprintf("city-%02d", finalObjects-1)])
}

// seedDataset builds the 3-object seed: two sources disagree about each
// city's place, under a small place hierarchy that live additions must
// stay within.
func seedDataset() *data.Dataset {
	h := hierarchy.New(hierarchy.Root)
	h.MustAdd("USA", hierarchy.Root)
	h.MustAdd("UK", hierarchy.Root)
	h.MustAdd("NY", "USA")
	h.MustAdd("LA", "USA")
	h.MustAdd("London", "UK")
	h.Freeze()
	ds := &data.Dataset{Name: "openworld", Truth: map[string]string{}, H: h}
	for i := 0; i < seedObjects; i++ {
		o := fmt.Sprintf("city-%02d", i)
		ds.Records = append(ds.Records,
			data.Record{Object: o, Source: "atlas", Value: "NY"},
			data.Record{Object: o, Source: "gazette", Value: "USA"},
		)
	}
	return ds
}

func createCampaign(base string, ds *data.Dataset) {
	var wire bytes.Buffer
	if err := data.Write(&wire, ds); err != nil {
		fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"id": campaignID, "state": "live", "k": 3, "seed": 7,
		"open_answers": true, "dataset": json.RawMessage(wire.Bytes()),
	})
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatal(fmt.Errorf("create: %d: %s", resp.StatusCode, msg))
	}
}

// runWorker pulls assigned tasks and answers them, NY-biased, until it has
// seen a few empty rounds (the assigner hands out nothing new).
func runWorker(base string, w int) {
	rng := rand.New(rand.NewSource(int64(100 + w)))
	worker := fmt.Sprintf("worker-%02d", w)
	for round := 0; round < 20; round++ {
		resp, err := http.Get(base + "/v1/campaigns/" + campaignID + "/task?worker=" + worker)
		if err != nil {
			return // server torn down
		}
		var tl struct {
			Tasks []struct {
				Object     string   `json:"object"`
				Candidates []string `json:"candidates"`
			} `json:"tasks"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tl)
		resp.Body.Close()
		if err != nil {
			return
		}
		for _, task := range tl.Tasks {
			value := task.Candidates[rng.Intn(len(task.Candidates))]
			if rng.Float64() < 0.8 {
				value = "NY" // mostly truthful crowd
			}
			postJSON(base+"/v1/campaigns/"+campaignID+"/answer",
				data.Answer{Object: task.Object, Worker: worker, Value: value})
		}
	}
}

func postJSON(url string, payload any) {
	var body io.Reader
	if payload != nil {
		buf, _ := json.Marshal(payload)
		body = bytes.NewReader(buf)
	}
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func getTruths(base string) map[string]string {
	resp, err := http.Get(base + "/v1/campaigns/" + campaignID + "/truths")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var truths map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&truths); err != nil {
		fatal(err)
	}
	return truths
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "openworld:", err)
	os.Exit(1)
}
