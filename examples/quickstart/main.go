// Quickstart: the paper's running example (Table 1). Three sources claim
// where the Statue of Liberty stands — 'NY', 'Liberty Island' and 'LA'.
// 'Liberty Island' is inside 'NY', so the first two claims support each
// other; TDH infers the most specific truth (Liberty Island) instead of
// treating the three values as mutually exclusive.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hierarchy"
)

func main() {
	// Geographic hierarchy: root -> USA/UK -> states/cities -> islands.
	h := hierarchy.New(hierarchy.Root)
	h.MustAdd("USA", hierarchy.Root)
	h.MustAdd("UK", hierarchy.Root)
	h.MustAdd("NY", "USA")
	h.MustAdd("LA", "USA")
	h.MustAdd("Liberty Island", "NY")
	h.MustAdd("London", "UK")
	h.MustAdd("Manchester", "UK")
	h.MustAdd("Westminster", "London")
	h.Freeze()

	ds := &data.Dataset{
		Name: "table1",
		Records: []data.Record{
			{Object: "Statue of Liberty", Source: "UNESCO", Value: "NY"},
			{Object: "Statue of Liberty", Source: "Wikipedia", Value: "Liberty Island"},
			{Object: "Statue of Liberty", Source: "Arrangy", Value: "LA"},
			{Object: "Big Ben", Source: "Quora", Value: "Manchester"},
			{Object: "Big Ben", Source: "tripadvisor", Value: "London"},
			// A few more claims so source reliabilities are estimable.
			{Object: "Empire State Building", Source: "UNESCO", Value: "NY"},
			{Object: "Empire State Building", Source: "Wikipedia", Value: "NY"},
			{Object: "Empire State Building", Source: "Arrangy", Value: "LA"},
			{Object: "Westminster Abbey", Source: "Wikipedia", Value: "Westminster"},
			{Object: "Westminster Abbey", Source: "UNESCO", Value: "London"},
			{Object: "Westminster Abbey", Source: "Quora", Value: "Manchester"},
		},
		Truth: map[string]string{},
		H:     h,
	}
	idx := data.NewIndex(ds)
	model := core.Run(idx, core.DefaultOptions())

	fmt.Println("Inferred truths (most specific value wins):")
	for o, v := range model.Truths() {
		fmt.Printf("  %-22s -> %s\n", o, v)
	}
	fmt.Println("\nSource trustworthiness (exact / generalized / wrong):")
	for _, s := range idx.SourceNames {
		phi := model.PhiOf(s)
		fmt.Printf("  %-12s %.3f / %.3f / %.3f\n", s, phi[0], phi[1], phi[2])
	}
	fmt.Println("\nConfidence for the Statue of Liberty:")
	ov := idx.View("Statue of Liberty")
	for i, v := range ov.CI.Values {
		fmt.Printf("  %-15s %.4f\n", v, model.MuOf("Statue of Liberty")[i])
	}
}
