// Numericstock: TDH's numeric extension (Section 3.2). Stock attributes
// are reported by sources at different significant-figure precisions —
// an *implicit* hierarchy (605.196 -> 605.2 -> 605 -> 600). TDH runs on
// that rounding hierarchy and is robust to outlier sources, unlike MEAN.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/hierarchy"
	"repro/internal/numeric"
	"repro/internal/synth"
)

func main() {
	// Show the implicit hierarchy for one value.
	chain, _ := hierarchy.GeneralizationChain("605.196")
	fmt.Printf("implicit rounding hierarchy of 605.196: %v\n\n", chain)

	attrs := synth.Stock(synth.StockConfig{Seed: 7, Symbols: 200, Sources: 55})
	for _, a := range attrs {
		fmt.Printf("attribute %s (%d records):\n", a.Name, len(a.Records))
		tdh := core.RunNumeric(a.Name, a.Records, nil, core.DefaultOptions()).Estimates
		crh := numeric.CRH{}.Estimate(a.Records)
		catd := numeric.CATD{}.Estimate(a.Records)
		mean := numeric.Mean{}.Estimate(a.Records)
		for _, row := range []struct {
			name string
			est  map[string]float64
		}{{"TDH", tdh}, {"CRH", crh}, {"CATD", catd}, {"MEAN", mean}} {
			sc := eval.EvaluateNumeric(a.Gold, row.est)
			fmt.Printf("  %-5s MAE=%.4f  R/E=%.4f\n", row.name, sc.MAE, sc.RE)
		}
		fmt.Println()
	}
	fmt.Println("TDH selects the most probable claimed value on the rounding hierarchy,")
	fmt.Println("so outlier sources cannot drag the estimate the way they drag MEAN.")
}
